// Package ast defines the abstract syntax of LogiQL (paper §2.2): typed
// predicates in 6NF, derivation rules (including aggregation P2P rules and
// predict rules), integrity constraints, reactive rules over delta and
// versioned predicates, and the lang: directives for prescriptive
// analytics.
package ast

import (
	"strings"

	"logicblox/internal/tuple"
)

// DeltaKind marks reactive-rule predicate decorations (paper §2.2.1):
// +R (insertions), -R (deletions), ^R (upsert: shorthand for a combined
// +R / -R).
type DeltaKind uint8

// Delta markers.
const (
	DeltaNone DeltaKind = iota
	DeltaPlus
	DeltaMinus
	DeltaHat
)

func (d DeltaKind) String() string {
	switch d {
	case DeltaPlus:
		return "+"
	case DeltaMinus:
		return "-"
	case DeltaHat:
		return "^"
	default:
		return ""
	}
}

// Term is a value-producing expression: a variable, constant, arithmetic
// expression, functional-predicate application, or the wildcard.
type Term interface {
	isTerm()
	String() string
}

// Var is a variable reference.
type Var struct{ Name string }

// Const is a literal constant.
type Const struct{ Val tuple.Value }

// Wildcard is the anonymous term "_": an existentially quantified,
// don't-care position.
type Wildcard struct{}

// Arith is a binary arithmetic expression over numeric terms.
type Arith struct {
	Op   byte // '+', '-', '*', '/'
	L, R Term
}

// FuncApp is a functional-predicate application used as a term, e.g.
// sellingPrice[sku] in the abbreviated rule syntax, possibly versioned
// (sales@start[...] in reactive rules); the compiler desugars it into an
// auxiliary body atom binding a fresh variable.
type FuncApp struct {
	Pred    string
	AtStart bool
	Args    []Term
}

func (Var) isTerm()      {}
func (Const) isTerm()    {}
func (Wildcard) isTerm() {}
func (Arith) isTerm()    {}
func (FuncApp) isTerm()  {}

func (v Var) String() string    { return v.Name }
func (c Const) String() string  { return c.Val.String() }
func (Wildcard) String() string { return "_" }
func (a Arith) String() string {
	return "(" + a.L.String() + " " + string(a.Op) + " " + a.R.String() + ")"
}
func (f FuncApp) String() string {
	v := ""
	if f.AtStart {
		v = "@start"
	}
	return f.Pred + v + "[" + termList(f.Args) + "]"
}

func termList(ts []Term) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, ", ")
}

// Atom is a predicate occurrence. LogiQL predicates come in two shapes
// (paper §2.2.1): relational R(x1..xn) and functional R[x1..xn-1] = xn.
// For the functional shape, Value is non-nil and Args holds the key terms.
type Atom struct {
	Pred    string
	Delta   DeltaKind // reactive decoration on the predicate
	AtStart bool      // R@start: the content at transaction start
	Args    []Term
	Value   Term // non-nil for the functional (bracket) shape
}

// Arity returns the number of columns the atom's predicate has under this
// occurrence.
func (a *Atom) Arity() int {
	n := len(a.Args)
	if a.Value != nil {
		n++
	}
	return n
}

// AllTerms returns key terms plus the value term, if any.
func (a *Atom) AllTerms() []Term {
	if a.Value == nil {
		return a.Args
	}
	out := make([]Term, 0, len(a.Args)+1)
	out = append(out, a.Args...)
	out = append(out, a.Value)
	return out
}

// Functional reports whether the atom uses the bracket (functional) shape.
func (a *Atom) Functional() bool { return a.Value != nil }

func (a *Atom) String() string {
	var b strings.Builder
	b.WriteString(a.Delta.String())
	b.WriteString(a.Pred)
	if a.AtStart {
		b.WriteString("@start")
	}
	if a.Value != nil {
		b.WriteByte('[')
		b.WriteString(termList(a.Args))
		b.WriteString("] = ")
		b.WriteString(a.Value.String())
	} else {
		b.WriteByte('(')
		b.WriteString(termList(a.Args))
		b.WriteByte(')')
	}
	return b.String()
}

// CmpOp is a comparison operator.
type CmpOp string

// Comparison operators.
const (
	OpEq CmpOp = "="
	OpNe CmpOp = "!="
	OpLt CmpOp = "<"
	OpLe CmpOp = "<="
	OpGt CmpOp = ">"
	OpGe CmpOp = ">="
)

// Comparison is a builtin comparison literal. An "=" comparison whose one
// side is an unbound variable acts as a binding (assignment).
type Comparison struct {
	Op   CmpOp
	L, R Term
}

func (c *Comparison) String() string {
	return c.L.String() + " " + string(c.Op) + " " + c.R.String()
}

// Literal is one conjunct of a rule body or constraint side: a (possibly
// negated) atom or a comparison.
type Literal struct {
	Negated bool
	Atom    *Atom
	Cmp     *Comparison
}

func (l *Literal) String() string {
	switch {
	case l.Cmp != nil:
		return l.Cmp.String()
	case l.Negated:
		return "!" + l.Atom.String()
	default:
		return l.Atom.String()
	}
}

// Aggregation is the agg<<u = fn(z)>> specification of a P2P aggregation
// rule (paper §2.2.1). For count, Arg is empty.
type Aggregation struct {
	Result string // the aggregate output variable (u)
	Func   string // sum, count, min, max, avg, total
	Arg    string // the aggregated variable (z)
}

func (a *Aggregation) String() string {
	return "agg<<" + a.Result + " = " + a.Func + "(" + a.Arg + ")>>"
}

// Predict is the predict<<m = fn(v|f)>> specification of a predictive
// analytics P2P rule (paper §2.3.2). In learning mode Func names a model
// family (logist, linear); in evaluation mode Func is "eval" and Value
// names the model variable.
type Predict struct {
	Result  string // model or prediction output variable
	Func    string // logist, linear, eval
	Value   string // observed value variable (learning) / model variable (eval)
	Feature string // feature variable
}

func (p *Predict) String() string {
	return "predict<<" + p.Result + " = " + p.Func + "(" + p.Value + "|" + p.Feature + ")>>"
}

// Rule is a derivation rule head <- body. Facts are rules with an empty
// body and ground heads. Reactive rules carry delta decorations on head
// or body atoms.
type Rule struct {
	Heads []*Atom
	Body  []*Literal
	Agg   *Aggregation // non-nil for aggregation P2P rules
	Pred  *Predict     // non-nil for predict P2P rules
}

func (r *Rule) String() string {
	var b strings.Builder
	for i, h := range r.Heads {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(h.String())
	}
	if len(r.Body) == 0 && r.Agg == nil && r.Pred == nil {
		b.WriteByte('.')
		return b.String()
	}
	b.WriteString(" <- ")
	if r.Agg != nil {
		b.WriteString(r.Agg.String())
		b.WriteByte(' ')
	}
	if r.Pred != nil {
		b.WriteString(r.Pred.String())
		b.WriteByte(' ')
	}
	for i, l := range r.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(l.String())
	}
	b.WriteByte('.')
	return b.String()
}

// Constraint is an integrity constraint F -> G (paper §2.2.1). Type
// declarations are constraints whose right side contains type atoms.
type Constraint struct {
	Body []*Literal // F
	Head []*Literal // G
}

func (c *Constraint) String() string {
	var b strings.Builder
	for i, l := range c.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(l.String())
	}
	b.WriteString(" -> ")
	for i, l := range c.Head {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(l.String())
	}
	b.WriteByte('.')
	return b.String()
}

// Directive is a lang: pragma, e.g. lang:solve:variable(`Stock) declaring
// a free second-order predicate variable for prescriptive analytics
// (paper §2.3.1).
type Directive struct {
	Path []string // e.g. ["lang","solve","variable"]
	Args []string // predicate names (backquoted in the surface syntax)
}

func (d *Directive) String() string {
	return strings.Join(d.Path, ":") + "(`" + strings.Join(d.Args, ", `") + ")."
}

// Clause is any top-level program element.
type Clause interface{ isClause() }

func (*Rule) isClause()       {}
func (*Constraint) isClause() {}
func (*Directive) isClause()  {}

// Program is a parsed block: an ordered collection of clauses. Order is
// semantically irrelevant for rules and constraints ("disorderliness",
// paper T1) but preserved for error reporting.
type Program struct {
	Clauses []Clause
}

// Rules returns the derivation rules in the program.
func (p *Program) Rules() []*Rule {
	var out []*Rule
	for _, c := range p.Clauses {
		if r, ok := c.(*Rule); ok {
			out = append(out, r)
		}
	}
	return out
}

// Constraints returns the integrity constraints in the program.
func (p *Program) Constraints() []*Constraint {
	var out []*Constraint
	for _, c := range p.Clauses {
		if k, ok := c.(*Constraint); ok {
			out = append(out, k)
		}
	}
	return out
}

// Directives returns the lang: directives in the program.
func (p *Program) Directives() []*Directive {
	var out []*Directive
	for _, c := range p.Clauses {
		if d, ok := c.(*Directive); ok {
			out = append(out, d)
		}
	}
	return out
}

// TypeAtoms lists the names treated as type predicates when they appear
// on the right side of constraints: primitive type tests the engine
// enforces natively.
var TypeAtoms = map[string]tuple.Kind{
	"int":     tuple.KindInt,
	"float":   tuple.KindFloat,
	"decimal": tuple.KindFloat,
	"string":  tuple.KindString,
	"boolean": tuple.KindBool,
	"date":    tuple.KindString,
}
