package analysis

// dataflow.go is the forward dataflow driver the CFG analyzers share: a
// worklist fixpoint over reverse postorder with per-edge refinement, plus
// the enumeration of analysis units (function declarations and function
// literals, each analyzed as its own CFG).

import (
	"go/ast"
	"go/token"
)

// flowFns packages one analysis' lattice operations. States must form a
// finite-height lattice under joinInto for the fixpoint to terminate;
// transfer and edge must be monotone.
type flowFns[S any] struct {
	// clone deep-copies a state so transfer can mutate freely.
	clone func(S) S
	// joinInto merges src into dst, reporting whether dst changed.
	joinInto func(dst, src S) bool
	// transfer pushes a block-entry state through the block's nodes.
	transfer func(b *Block, in S) S
	// edge, when non-nil, refines the block-exit state along one edge
	// (e.g. killing facts on the `err != nil` branch). It may mutate and
	// return its argument.
	edge func(e Edge, out S) S
}

// forwardFlow runs the forward may-analysis to fixpoint and returns the
// state at entry to each reachable block. newBottom supplies the lattice
// bottom used to seed the entry block.
func forwardFlow[S any](cfg *CFG, entry S, fns flowFns[S]) map[*Block]S {
	rpo := cfg.ReversePostorder()
	in := map[*Block]S{}
	if len(rpo) == 0 {
		return in
	}
	in[rpo[0]] = entry
	// Round-robin over RPO until stable. The lattices in this package are
	// small (locks and resources per function), so convergence is fast;
	// the iteration cap is a belt-and-braces guard against a non-monotone
	// transfer bug, not a tuning knob.
	for iter := 0; iter < 1000; iter++ {
		changed := false
		for _, b := range rpo {
			st, ok := in[b]
			if !ok {
				continue
			}
			out := fns.transfer(b, fns.clone(st))
			for _, e := range b.Succs {
				es := fns.clone(out)
				if fns.edge != nil {
					es = fns.edge(e, es)
				}
				cur, ok := in[e.To]
				if !ok {
					in[e.To] = es
					changed = true
					continue
				}
				if fns.joinInto(cur, es) {
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return in
}

// funcUnit is one unit of CFG analysis: a function declaration or a
// function literal. Literals appearing directly as `defer func(){...}()`
// are not units of their own — their effects (releases, in particular)
// belong to the enclosing function's defer semantics.
type funcUnit struct {
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	body *ast.BlockStmt
	// encl is the declaration this unit belongs to (itself for decls).
	encl *ast.FuncDecl
	// goStmt is set when the unit is the immediate callee of a go
	// statement — the body of a spawned goroutine.
	goStmt *ast.GoStmt
}

func (u funcUnit) name() string {
	if u.decl != nil {
		return u.decl.Name.Name
	}
	return "func literal"
}

func (u funcUnit) pos() token.Pos {
	if u.decl != nil {
		return u.decl.Pos()
	}
	return u.lit.Pos()
}

// funcUnits enumerates the analysis units of one file: every declared
// function plus every function literal that is not the immediate call of
// a defer statement. Literal enumeration recurses, so a literal inside a
// literal is its own unit too.
func funcUnits(file *ast.File) []funcUnit {
	var units []funcUnit
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		units = append(units, funcUnit{decl: fn, body: fn.Body, encl: fn})
		units = append(units, literalUnits(fn.Body, fn)...)
	}
	return units
}

// literalUnits collects the function-literal units under root, skipping
// deferred immediate calls (their bodies fold into the enclosing defer).
func literalUnits(root ast.Node, encl *ast.FuncDecl) []funcUnit {
	var units []funcUnit
	deferred := map[*ast.FuncLit]bool{}
	goLit := map[*ast.FuncLit]*ast.GoStmt{}
	ast.Inspect(root, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeferStmt:
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				deferred[lit] = true
			}
		case *ast.GoStmt:
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				goLit[lit] = s
			}
		}
		return true
	})
	ast.Inspect(root, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok || deferred[lit] {
			return true
		}
		units = append(units, funcUnit{lit: lit, body: lit.Body, encl: encl, goStmt: goLit[lit]})
		return true
	})
	return units
}

// inspectShallow walks n without descending into function literals:
// the evaluation steps of a block execute the literal's *creation*, not
// its body.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return fn(m)
	})
}
