package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"logicblox/internal/core"
	"logicblox/internal/obs"
)

// syncBuffer is a goroutine-safe log sink for slog under -race.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// logLines decodes every JSON line the logger emitted.
func (s *syncBuffer) logLines(t *testing.T) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(s.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("log line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

func newLogger(buf *syncBuffer) *slog.Logger {
	return slog.New(slog.NewJSONHandler(buf, nil))
}

// spanNames flattens a span tree into its node names.
func spanNames(s obs.SpanSnapshot) []string {
	names := []string{s.Name}
	for _, c := range s.Children {
		names = append(names, spanNames(c)...)
	}
	return names
}

func hasName(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

// TestRequestTraceExplainability is the end-to-end post-hoc story for a
// single slow request: the client sends X-Request-ID, the response
// echoes it, GET /debug/trace/{id} returns the request's span tree with
// the engine's rule spans parented under it, and the slow-query log line
// carries the same ID.
func TestRequestTraceExplainability(t *testing.T) {
	buf := &syncBuffer{}
	s := New(core.NewDatabase(), Config{AccessLog: newLogger(buf), SlowQuery: time.Nanosecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	mustOK(t, ts, "POST", "/addblock", Request{Name: "schema", Src: `
		profit[sku] = z <- sellingPrice[sku] = x, buyingPrice[sku] = y, z = x - y.`}, nil)

	// The exec carries a caller-chosen request ID; its rederive evaluates
	// the installed profit rule inside the engine.
	const id = "req-e2e-0001"
	body := bytes.NewReader([]byte(`{"src": "+sellingPrice[\"a\"] = 10. +buyingPrice[\"a\"] = 6."}`))
	req, err := http.NewRequest("POST", ts.URL+"/exec", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", id)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exec status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != id {
		t.Fatalf("echoed X-Request-ID = %q, want %q", got, id)
	}

	// The trace ring answers for that ID with the full span tree,
	// including the engine's rule spans under the per-request root.
	var tr TraceResponse
	mustOK(t, ts, "GET", "/debug/trace/"+id, nil, &tr)
	if !tr.OK || tr.RequestID != id || tr.Endpoint != "exec" || tr.Status != 200 || tr.Trace == nil {
		t.Fatalf("trace response = %+v", tr)
	}
	names := spanNames(*tr.Trace)
	for _, want := range []string{"http.exec", "tx.exec", "rederive", "rule:profit"} {
		if !hasName(names, want) {
			t.Fatalf("trace span names %v missing %q", names, want)
		}
	}

	// The slow-query log line for the request carries the same ID and the
	// span tree.
	var slow map[string]any
	for _, line := range buf.logLines(t) {
		if line["msg"] == "slow_query" && line["request_id"] == id {
			slow = line
			break
		}
	}
	if slow == nil {
		t.Fatalf("no slow_query log line for %s in:\n%s", id, buf.String())
	}
	if slow["endpoint"] != "exec" || slow["trace"] == nil {
		t.Fatalf("slow_query line = %v", slow)
	}

	// The access log recorded the request with branch and status.
	var access map[string]any
	for _, line := range buf.logLines(t) {
		if line["msg"] == "request" && line["request_id"] == id {
			access = line
			break
		}
	}
	if access == nil {
		t.Fatalf("no access log line for %s", id)
	}
	if access["method"] != "POST" || access["path"] != "/exec" || access["status"] != float64(200) || access["branch"] != "main" {
		t.Fatalf("access line = %v", access)
	}
}

// TestRequestIDGenerated: without a client-supplied ID the server mints
// one, echoes it, and serves its trace.
func TestRequestIDGenerated(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Post(ts.URL+"/query", "application/json",
		bytes.NewReader([]byte(`{"src": "_(x) <- x = 1."}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")
	if len(id) != 16 {
		t.Fatalf("generated X-Request-ID = %q, want 16 hex chars", id)
	}
	var tr TraceResponse
	mustOK(t, ts, "GET", "/debug/trace/"+id, nil, &tr)
	if !tr.OK || tr.Trace == nil {
		t.Fatalf("trace for generated id = %+v", tr)
	}
}

// TestTraceRingBounded: the ring retains at most TraceRing traces,
// evicting oldest-first, and lists the retained IDs.
func TestTraceRingBounded(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceRing: 4})
	for i := 0; i < 6; i++ {
		req, _ := http.NewRequest("POST", ts.URL+"/query",
			bytes.NewReader([]byte(`{"src": "_(x) <- x = 1."}`)))
		req.Header.Set("X-Request-ID", fmt.Sprintf("ring-%d", i))
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	var list TraceResponse
	mustOK(t, ts, "GET", "/debug/trace", nil, &list)
	if len(list.IDs) != 4 || list.IDs[0] != "ring-2" || list.IDs[3] != "ring-5" {
		t.Fatalf("retained ids = %v", list.IDs)
	}
	var e ErrorResponse
	if status := do(t, ts, "GET", "/debug/trace/ring-0", nil, &e); status != 404 || e.Code != "no_such_trace" {
		t.Fatalf("evicted trace: status %d code %q", status, e.Code)
	}
}

// TestInlineTrace: ?trace=1 embeds the request's span tree in the
// response body.
func TestInlineTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var q QueryResponse
	mustOK(t, ts, "POST", "/query?trace=1", Request{Src: `_(x) <- x = 1.`}, &q)
	if q.Trace == nil || q.Trace.Name != "http.query" || !hasName(spanNames(*q.Trace), "tx.query") {
		t.Fatalf("inline trace = %+v", q.Trace)
	}
	// Without the flag, no trace rides along.
	q = QueryResponse{}
	mustOK(t, ts, "POST", "/query", Request{Src: `_(x) <- x = 1.`}, &q)
	if q.Trace != nil {
		t.Fatalf("unexpected inline trace: %+v", q.Trace)
	}
}

// TestErrorEnvelopeCarriesRequestID: failures include the request ID in
// the standard wire error body.
func TestErrorEnvelopeCarriesRequestID(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, _ := http.NewRequest("POST", ts.URL+"/exec",
		bytes.NewReader([]byte(`{"src": "+p(1", "branch": "main"}`)))
	req.Header.Set("X-Request-ID", "err-0001")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 400 || e.Code != "parse" || e.RequestID != "err-0001" {
		t.Fatalf("error envelope = %+v (status %d)", e, resp.StatusCode)
	}
}

// TestPanicEnvelope: the panic-recovery middleware emits the standard
// wire error JSON — code "internal", the message, and the request ID —
// and increments the panic counter.
func TestPanicEnvelope(t *testing.T) {
	s := New(core.NewDatabase(), Config{})
	h := s.endpoint("boom", http.MethodPost, false, func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	req := httptest.NewRequest(http.MethodPost, "/boom", nil)
	req.Header.Set("X-Request-ID", "panic-0001")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var e ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("body %q not an ErrorResponse: %v", rec.Body, err)
	}
	if e.Code != "internal" || e.RequestID != "panic-0001" || !strings.Contains(e.Error, "kaboom") {
		t.Fatalf("envelope = %+v", e)
	}
	if got := s.reg.Snapshot().Counters["server.panics"]; got != 1 {
		t.Fatalf("server.panics = %d", got)
	}
	// The panicking request's trace is retained and marked.
	if _, ok := s.traces.get("panic-0001"); !ok {
		t.Fatal("panic trace not retained")
	}
}

// TestHealthzLatencyPercentiles: after traffic, /healthz carries per-
// endpoint p50/p95/p99.
func TestHealthzLatencyPercentiles(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 5; i++ {
		mustOK(t, ts, "POST", "/query", Request{Src: `_(x) <- x = 1.`}, nil)
	}
	var body map[string]any
	mustOK(t, ts, "GET", "/healthz", nil, &body)
	lat, ok := body["latency"].(map[string]any)
	if !ok {
		t.Fatalf("healthz latency missing: %v", body)
	}
	q, ok := lat["query"].(map[string]any)
	if !ok {
		t.Fatalf("healthz latency for query missing: %v", lat)
	}
	for _, k := range []string{"p50_ms", "p95_ms", "p99_ms"} {
		v, ok := q[k].(float64)
		if !ok || v <= 0 {
			t.Fatalf("healthz latency %s = %v", k, q[k])
		}
	}
}

// TestVarsReportsTraceSampling: /debug/vars reports the obs registry's
// current 1-in-N trace sampling rate.
func TestVarsReportsTraceSampling(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var doc struct {
		TraceSampleN int `json:"trace_sample_n"`
	}
	mustOK(t, ts, "GET", "/debug/vars", nil, &doc)
	if doc.TraceSampleN != 1 {
		t.Fatalf("trace_sample_n = %d, want 1", doc.TraceSampleN)
	}
	s.Obs().SetTraceSampling(10)
	mustOK(t, ts, "GET", "/debug/vars", nil, &doc)
	if doc.TraceSampleN != 10 {
		t.Fatalf("trace_sample_n = %d, want 10", doc.TraceSampleN)
	}
}

// TestMetricsQuantiles: /metrics exposes summary-style p50/p95/p99
// gauges alongside each histogram.
func TestMetricsQuantiles(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mustOK(t, ts, "POST", "/query", Request{Src: `_(x) <- x = 1.`}, nil)
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`lb_http_query_duration_seconds_quantile{quantile="0.5"}`,
		`lb_http_query_duration_seconds_quantile{quantile="0.95"}`,
		`lb_http_query_duration_seconds_quantile{quantile="0.99"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, text)
		}
	}
}
