package relation

import (
	"logicblox/internal/treap"
	"logicblox/internal/trie"
	"logicblox/internal/tuple"
)

// TrieIter presents a Relation as a trie (implements trie.Iterator).
//
// It is backed by a single forward-moving iterator over the relation's
// tuple treap. Depth-first trie navigation (the access pattern of leapfrog
// triejoin) visits tuples in lexicographic order, so every Open/Next/Seek
// translates to a forward Seek on the underlying treap iterator; each
// operation is O(log N) as required by the iterator contract.
type TrieIter struct {
	r      Relation
	it     *treap.Iterator[tuple.Tuple, struct{}]
	prefix tuple.Tuple // keys selected at levels 0..depth
	depth  int
	atEnd  bool
	stale  bool        // set by Up: underlying iterator may sit past this group
	probe  tuple.Tuple // scratch buffer for seek bounds
}

// Iterator returns a trie iterator positioned at the synthetic root.
func (r Relation) Iterator() trie.Iterator {
	return &TrieIter{
		r:      r,
		depth:  -1,
		prefix: make(tuple.Tuple, 0, r.arity),
		probe:  make(tuple.Tuple, 0, r.arity+1),
	}
}

// Arity implements trie.Iterator.
func (ti *TrieIter) Arity() int { return ti.r.arity }

// Depth implements trie.Iterator.
func (ti *TrieIter) Depth() int { return ti.depth }

// AtEnd implements trie.Iterator.
func (ti *TrieIter) AtEnd() bool { return ti.atEnd }

// Key implements trie.Iterator.
func (ti *TrieIter) Key() tuple.Value {
	if ti.depth < 0 || ti.atEnd {
		panic("relation: Key called at root or at end")
	}
	return ti.prefix[ti.depth]
}

// Open implements trie.Iterator.
func (ti *TrieIter) Open() {
	if ti.depth+1 >= ti.r.arity {
		panic("relation: Open below leaf level")
	}
	if ti.depth >= 0 && ti.atEnd {
		panic("relation: Open at end of level")
	}
	if ti.depth < 0 {
		// (Re-)open at the root: start a fresh scan.
		ti.it = ti.r.t.Iterator()
		ti.depth = 0
		ti.prefix = ti.prefix[:0]
		if ti.it.AtEnd() {
			ti.atEnd = true
			return
		}
		ti.prefix = append(ti.prefix, ti.it.Key()[0])
		ti.atEnd = false
		return
	}
	if ti.stale {
		// An earlier Up left the underlying iterator beyond this group
		// (it cannot move backward), so restart it at the group's first
		// tuple: the least tuple ≥ the current prefix.
		ti.it = ti.r.t.Iterator()
		ti.it.Seek(ti.prefix)
		ti.stale = false
	}
	// The underlying iterator is positioned at the first tuple of the
	// current key's group (an invariant of Next/Seek/Open landings), so
	// the first child key can be read off directly.
	ti.depth++
	ti.prefix = append(ti.prefix, ti.it.Key()[ti.depth])
	ti.atEnd = false
}

// Up implements trie.Iterator.
func (ti *TrieIter) Up() {
	if ti.depth < 0 {
		panic("relation: Up at root")
	}
	ti.depth--
	ti.prefix = ti.prefix[:ti.depth+1]
	ti.atEnd = false
	ti.stale = true
}

// Next implements trie.Iterator.
func (ti *TrieIter) Next() {
	if ti.atEnd {
		return
	}
	// Seek just past (prefix[0..depth], +inf, ...): the least tuple whose
	// value at this depth exceeds the current key under the same parent.
	ti.probe = ti.probe[:0]
	ti.probe = append(ti.probe, ti.prefix...)
	ti.probe = append(ti.probe, tuple.MaxValue())
	ti.land()
}

// Seek implements trie.Iterator.
func (ti *TrieIter) Seek(v tuple.Value) {
	if ti.atEnd {
		return
	}
	if tuple.Compare(v, ti.prefix[ti.depth]) <= 0 {
		return // already at or past the probe
	}
	ti.probe = ti.probe[:0]
	ti.probe = append(ti.probe, ti.prefix[:ti.depth]...)
	ti.probe = append(ti.probe, v)
	ti.land()
}

// land seeks the underlying iterator to ti.probe and re-derives the
// position at the current depth: either on a new sibling key (same
// parent prefix) or at the end of the level.
func (ti *TrieIter) land() {
	ti.it.Seek(ti.probe)
	ti.stale = false
	if ti.it.AtEnd() {
		ti.atEnd = true
		return
	}
	t := ti.it.Key()
	// Still under the same parent prefix?
	for i := 0; i < ti.depth; i++ {
		if !tuple.Equal(t[i], ti.prefix[i]) {
			ti.atEnd = true
			return
		}
	}
	ti.prefix[ti.depth] = t[ti.depth]
	ti.atEnd = false
}
