package txrepair

import (
	"testing"

	"logicblox/internal/obs"
)

// TestRunnersRecordObsCounters checks both concurrency executors publish
// their statistics to the process-wide registry: repair counts and
// conflicting transactions for the repair circuit, lock waits for the
// two-phase-locking baseline.
func TestRunnersRecordObsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	defer obs.SetDefault(nil)

	// α so high every transaction touches every item: conflicts certain.
	store, txs := InventoryWorkload(16, 32, 4.0, 1)
	_, stats := RunRepair(store, txs, 4)
	if stats.Repairs == 0 || stats.Conflicts == 0 {
		t.Fatalf("workload produced no conflicts: %+v", stats)
	}
	if stats.Conflicts > stats.Transactions || stats.Conflicts > stats.Repairs {
		t.Fatalf("conflicts out of range: %+v", stats)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["txrepair.transactions"]; got != int64(stats.Transactions) {
		t.Fatalf("txrepair.transactions = %d, want %d", got, stats.Transactions)
	}
	if got := snap.Counters["txrepair.repairs"]; got != int64(stats.Repairs) {
		t.Fatalf("txrepair.repairs = %d, want %d", got, stats.Repairs)
	}
	if got := snap.Counters["txrepair.conflicts"]; got != int64(stats.Conflicts) {
		t.Fatalf("txrepair.conflicts = %d, want %d", got, stats.Conflicts)
	}

	_, lstats := RunLocking(store, txs, 4)
	snap = reg.Snapshot()
	if got := snap.Counters["txrepair.transactions"]; got != int64(stats.Transactions+lstats.Transactions) {
		t.Fatalf("txrepair.transactions = %d after locking run, want %d", got, stats.Transactions+lstats.Transactions)
	}
	if got := snap.Counters["txrepair.lock_waits"]; got != int64(lstats.LockWaits) {
		t.Fatalf("txrepair.lock_waits = %d, want %d", got, lstats.LockWaits)
	}
}

// TestRunnersNoRegistryIsNoOp: without an installed registry the
// executors must run unchanged (nil-handle fast path).
func TestRunnersNoRegistryIsNoOp(t *testing.T) {
	obs.SetDefault(nil)
	store, txs := InventoryWorkload(8, 8, 1.0, 2)
	if _, stats := RunRepair(store, txs, 2); stats.Transactions != 8 {
		t.Fatalf("repair stats = %+v", stats)
	}
	if _, stats := RunLocking(store, txs, 2); stats.Transactions != 8 {
		t.Fatalf("locking stats = %+v", stats)
	}
}
