package core

import (
	"context"
	"fmt"

	"logicblox/internal/solver"
)

// Solve runs prescriptive analytics (paper §2.3.1): if the workspace's
// logic declares free second-order predicate variables
// (lang:solve:variable) and an objective (lang:solve:max/min), the
// program is grounded into an LP — or a MIP when the free predicate is
// integer-typed — solved, and the free predicates populated with the
// optimal values ("turning unknown values into known ones"). Derived
// views over the free predicates are re-materialized.
//
// The returned workspace satisfies the solver-facing constraints by
// construction (up to floating-point tolerance), so they are not
// re-checked here.
func (ws *Workspace) Solve() (*Workspace, *solver.Solution, error) {
	if ws.prog.Solve == nil || len(ws.prog.Solve.Variables) == 0 {
		return nil, nil, fmt.Errorf("solve: no lang:solve:variable declarations in workspace logic")
	}
	g, err := solver.Ground(ws.prog, ws.relations())
	if err != nil {
		return nil, nil, err
	}
	rels, sol, err := g.Solve()
	if err != nil {
		return nil, sol, err
	}
	out := ws.clone()
	dirty := map[string]bool{}
	for pred, rel := range rels {
		out.base = out.base.Set(pred, rel)
		dirty[pred] = true
	}
	res, err := out.rederive(context.Background(), dirty, nil)
	if err != nil {
		return nil, sol, err
	}
	return res, sol, nil
}
