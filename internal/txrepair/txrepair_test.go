package txrepair

import (
	"math/rand"
	"runtime"
	"testing"

	"logicblox/internal/tuple"
)

func decOp(key string) Op {
	return Op{
		Reads: []string{key},
		Write: key,
		F:     func(vals []tuple.Value) tuple.Value { return tuple.Int(vals[0].AsInt() - 1) },
	}
}

// TestPaperPopsicleExample follows §3.4's walkthrough: a transaction
// decrements inventory["Popsicle"]; its effects are −inventory=2,
// +inventory=1; after receiving those effects as corrections it produces
// −inventory=1, +inventory=0.
func TestPaperPopsicleExample(t *testing.T) {
	k := Key("inventory", "Popsicle")
	store := NewStore().Set(k, tuple.Int(2))
	tx := &Tx{ID: 1, Ops: []Op{decOp(k)}}

	e := Execute(tx, store)
	eff := e.Effects()[k]
	if !eff.HasOld || eff.Old.AsInt() != 2 || eff.New.AsInt() != 1 {
		t.Fatalf("effects = %+v, want -2/+1", eff)
	}
	if !e.Sensitive(k) {
		t.Fatalf("transaction should be sensitive to its read key")
	}
	if e.Sensitive(Key("inventory", "IceCream")) {
		t.Fatalf("transaction should not be sensitive to unread keys")
	}

	// Receive the same effects as incoming corrections (an earlier
	// transaction also decremented): the repaired effects are -1/+0.
	n := e.Correct(map[string]tuple.Value{k: tuple.Int(1)})
	if n != 1 {
		t.Fatalf("repaired %d ops, want 1", n)
	}
	eff = e.Effects()[k]
	if eff.Old.AsInt() != 1 || eff.New.AsInt() != 0 {
		t.Fatalf("repaired effects = %+v, want -1/+0", eff)
	}
}

func TestCorrectSkipsUnchangedValues(t *testing.T) {
	k := Key("inventory", "x")
	store := NewStore().Set(k, tuple.Int(5))
	e := Execute(&Tx{Ops: []Op{decOp(k)}}, store)
	if n := e.Correct(map[string]tuple.Value{k: tuple.Int(5)}); n != 0 {
		t.Fatalf("correction equal to snapshot value caused %d repairs", n)
	}
}

func TestMergeComposition(t *testing.T) {
	k := Key("inventory", "shared")
	store := NewStore().Set(k, tuple.Int(10))
	t1 := Execute(&Tx{ID: 1, Ops: []Op{decOp(k)}}, store)
	t2 := Execute(&Tx{ID: 2, Ops: []Op{decOp(k)}}, store)
	c := Merge(t1, t2)
	eff := c.Effects()[k]
	// Sequentially: 10 → 9 → 8; composite effect is -10/+8.
	if eff.Old.AsInt() != 10 || eff.New.AsInt() != 8 {
		t.Fatalf("composite effect = %+v", eff)
	}
	if c.Repairs() != 1 {
		t.Fatalf("repairs = %d, want 1 (t2 repaired once)", c.Repairs())
	}
	final := c.Apply(store)
	if v, _ := final.Get(k); v.AsInt() != 8 {
		t.Fatalf("final value = %v", v)
	}
}

func TestMergeDisjointNoRepair(t *testing.T) {
	ka, kb := Key("inv", "a"), Key("inv", "b")
	store := NewStore().Set(ka, tuple.Int(3)).Set(kb, tuple.Int(7))
	t1 := Execute(&Tx{Ops: []Op{decOp(ka)}}, store)
	t2 := Execute(&Tx{Ops: []Op{decOp(kb)}}, store)
	c := Merge(t1, t2)
	if c.Repairs() != 0 {
		t.Fatalf("disjoint transactions repaired %d ops", c.Repairs())
	}
	final := c.Apply(store)
	if v, _ := final.Get(ka); v.AsInt() != 2 {
		t.Fatalf("a = %v", v)
	}
	if v, _ := final.Get(kb); v.AsInt() != 6 {
		t.Fatalf("b = %v", v)
	}
}

func TestCompositeCorrection(t *testing.T) {
	// Corrections must flow into an already-composed circuit.
	k := Key("inv", "x")
	store := NewStore().Set(k, tuple.Int(100))
	t1 := Execute(&Tx{Ops: []Op{decOp(k)}}, store)
	t2 := Execute(&Tx{Ops: []Op{decOp(k)}}, store)
	c := Merge(t1, t2) // 100 → 98
	// An earlier transaction committed 100→50: the composite must repair
	// to 50→48.
	c.Correct(map[string]tuple.Value{k: tuple.Int(50)})
	eff := c.Effects()[k]
	if eff.Old.AsInt() != 50 || eff.New.AsInt() != 48 {
		t.Fatalf("composite after correction = %+v", eff)
	}
}

func TestSerializability(t *testing.T) {
	// All executors must agree with the serial result on the inventory
	// workload (decrements commute, so any serialization yields the same
	// final store).
	for _, alpha := range []float64{0.1, 1, 10} {
		store, txs := InventoryWorkload(400, 64, alpha, 42)
		want, _ := RunSerial(store, txs)

		gotRepair, stats := RunRepair(store, txs, runtime.NumCPU())
		if !storesEqual(want, gotRepair) {
			t.Fatalf("alpha=%v: repair result differs from serial", alpha)
		}
		if alpha >= 10 && stats.Repairs == 0 {
			t.Fatalf("alpha=%v: expected conflicts to cause repairs", alpha)
		}

		gotLock, _ := RunLocking(store, txs, 4)
		if !storesEqual(want, gotLock) {
			t.Fatalf("alpha=%v: locking result differs from serial", alpha)
		}
	}
}

func storesEqual(a, b Store) bool {
	if a.Len() != b.Len() {
		return false
	}
	equal := true
	a.Range(func(k string, v tuple.Value) bool {
		if bv, ok := b.Get(k); !ok || !tuple.Equal(v, bv) {
			equal = false
			return false
		}
		return true
	})
	return equal
}

func TestRepairCountScalesWithAlpha(t *testing.T) {
	// Higher α ⇒ more shared items ⇒ more (but still cheap, localized)
	// repairs. The expected shared items per pair is α².
	_, lowStats := runAlpha(t, 0.1)
	_, highStats := runAlpha(t, 10)
	if highStats.Repairs <= lowStats.Repairs {
		t.Fatalf("repairs: alpha=0.1 → %d, alpha=10 → %d; expected growth",
			lowStats.Repairs, highStats.Repairs)
	}
}

func runAlpha(t *testing.T, alpha float64) (Store, Stats) {
	t.Helper()
	store, txs := InventoryWorkload(900, 64, alpha, 7)
	return RunRepair(store, txs, 4)
}

func TestLockingWaitsGrowWithAlpha(t *testing.T) {
	// With per-op work (locks held while computing), high α must contend.
	store, txs := InventoryWorkloadWork(900, 128, 10, 7, 50)
	_, stats := RunLocking(store, txs, 8)
	if stats.LockWaits == 0 {
		t.Fatalf("alpha=10 with 8 workers should contend on locks")
	}
}

func TestInventoryWorkloadShape(t *testing.T) {
	store, txs := InventoryWorkload(100, 50, 1, 3)
	if store.Len() != 100 {
		t.Fatalf("store size = %d", store.Len())
	}
	if len(txs) != 50 {
		t.Fatalf("tx count = %d", len(txs))
	}
	total := 0
	for _, tx := range txs {
		if len(tx.Ops) == 0 {
			t.Fatalf("transaction with no ops")
		}
		total += len(tx.Ops)
	}
	// E[ops per tx] = α·√n = 10; allow generous slack.
	avg := float64(total) / float64(len(txs))
	if avg < 3 || avg > 30 {
		t.Fatalf("average ops per tx = %.1f, expected ≈ 10", avg)
	}
	// Determinism.
	_, txs2 := InventoryWorkload(100, 50, 1, 3)
	for i := range txs {
		if len(txs[i].Ops) != len(txs2[i].Ops) {
			t.Fatalf("workload not deterministic")
		}
	}
}

func TestRunRepairSingleAndEmpty(t *testing.T) {
	store := NewStore().Set("a/1", tuple.Int(1))
	out, stats := RunRepair(store, nil, 2)
	if !storesEqual(out, store) || stats.Transactions != 0 {
		t.Fatalf("empty batch changed store")
	}
	tx := &Tx{Ops: []Op{decOp("a/1")}}
	out, _ = RunRepair(store, []*Tx{tx}, 2)
	if v, _ := out.Get("a/1"); v.AsInt() != 0 {
		t.Fatalf("single tx result = %v", v)
	}
}

func TestBranchIsolation(t *testing.T) {
	// Changes in one branch (transaction) are invisible outside it until
	// applied (T4: perfect isolation).
	k := Key("inv", "x")
	store := NewStore().Set(k, tuple.Int(9))
	e := Execute(&Tx{Ops: []Op{decOp(k)}}, store)
	if v, _ := store.Get(k); v.AsInt() != 9 {
		t.Fatalf("executing a transaction mutated the base store")
	}
	after := e.Apply(store)
	if v, _ := after.Get(k); v.AsInt() != 8 {
		t.Fatalf("apply result = %v", v)
	}
	if v, _ := store.Get(k); v.AsInt() != 9 {
		t.Fatalf("apply mutated the base store")
	}
}

// TestSerializabilityNonCommutative uses non-commuting operations
// (x ← 2x + opID) so only the exact batch serialization order yields the
// serial result: the repair circuit must realize precisely that order.
func TestSerializabilityNonCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n = 40
	store := NewStore()
	for i := 0; i < n; i++ {
		store = store.Set(itemKey(i), tuple.Int(int64(i)))
	}
	var txs []*Tx
	for id := 0; id < 32; id++ {
		tx := &Tx{ID: id}
		seen := map[string]bool{}
		for j := 0; j < rng.Intn(6)+1; j++ {
			k := itemKey(rng.Intn(n))
			if seen[k] {
				continue // ops within a transaction are independent (distinct keys)
			}
			seen[k] = true
			opID := int64(id*100 + j)
			tx.Ops = append(tx.Ops, Op{
				Reads: []string{k},
				Write: k,
				F: func(vals []tuple.Value) tuple.Value {
					return tuple.Int(2*vals[0].AsInt() + opID)
				},
			})
		}
		txs = append(txs, tx)
	}
	want, _ := RunSerial(store, txs)
	got, _ := RunRepair(store, txs, 4)
	if !storesEqual(want, got) {
		t.Fatal("repair violated the batch serialization order")
	}
	gotLock, _ := RunLocking(store, txs, 1) // 1 worker = batch order
	if !storesEqual(want, gotLock) {
		t.Fatal("single-worker locking diverged from serial")
	}
}

// TestRepairPropertyRandom drives random batches through the repair
// circuit and checks against serial execution.
func TestRepairPropertyRandom(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		store := NewStore()
		n := rng.Intn(30) + 5
		for i := 0; i < n; i++ {
			store = store.Set(itemKey(i), tuple.Int(rng.Int63n(100)))
		}
		var txs []*Tx
		for id := 0; id < rng.Intn(20)+1; id++ {
			tx := &Tx{ID: id}
			touched := map[string]bool{}
			for j := 0; j < rng.Intn(4)+1; j++ {
				k := itemKey(rng.Intn(n))
				if touched[k] {
					continue // keep ops within a transaction independent
				}
				touched[k] = true
				mult := rng.Int63n(3) + 1
				tx.Ops = append(tx.Ops, Op{
					Reads: []string{k},
					Write: k,
					F: func(vals []tuple.Value) tuple.Value {
						return tuple.Int(vals[0].AsInt()*mult + 1)
					},
				})
			}
			if len(tx.Ops) == 0 {
				continue
			}
			txs = append(txs, tx)
		}
		want, _ := RunSerial(store, txs)
		got, _ := RunRepair(store, txs, 3)
		if !storesEqual(want, got) {
			t.Fatalf("seed %d: repair result differs from serial", seed)
		}
	}
}
