package optimizer

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"logicblox/internal/compiler"
	"logicblox/internal/relation"
)

// PlanStore is a persistent per-rule plan cache: it remembers the
// variable order the sampling optimizer chose for a rule (keyed by a
// structural fingerprint that survives recompilation) together with the
// input cardinalities at plan-choice time and the iterator-operation
// costs the engine actually observed executing the plan. On the next
// compile or fixpoint re-entry the cached order is reused outright;
// sample-based ChooseOrder re-runs only when the observed per-evaluation
// cost drifts past DriftFactor times the cost recorded when the plan was
// chosen, or when an input relation's cardinality changes by more than
// CardRatio. This closes the measure→decide→re-measure loop the paper's
// §3.2 sampling optimizer leaves open: real profiles replace sample
// replay as the keep-or-replan signal once they exist.
type PlanStore struct {
	mu      sync.Mutex
	opts    StoreOptions
	entries map[string]*planEntry

	hits        int64 // cached order reused
	misses      int64 // no entry: full ChooseOrder sampling ran
	redecisions int64 // entry was stale (drift / cardinality): re-sampled
	invalidated int64 // entries dropped by schema-change invalidation
}

// StoreOptions tune the plan cache's staleness tests.
type StoreOptions struct {
	// DriftFactor re-triggers sampling when a rule evaluation's observed
	// iterator operations exceed DriftFactor × the baseline recorded when
	// the plan was chosen (default 2.0).
	DriftFactor float64
	// CardRatio re-triggers sampling when any input relation's
	// cardinality grows or shrinks by more than this ratio relative to
	// plan-choice time (default 2.0).
	CardRatio float64
	// Optimizer configures the sampling runs the store falls back to.
	Optimizer Options
}

// driftFloor is the minimum baseline (in iterator operations) the drift
// test applies to: below it, absolute costs are noise and a 2× blowup is
// meaningless.
const driftFloor = 64

type planEntry struct {
	fingerprint string
	head        string
	source      string
	order       []int
	sampleCost  int            // sample-replay cost at choice time
	evaluated   int            // candidate orders tried at choice time
	cards       map[string]int // input cardinalities at choice time
	preds       []string       // base names of body predicates (invalidation)

	// Observed (obs-fed) cost model: per-evaluation iterator operations
	// measured by the engine executing this plan for real. The first
	// observation after plan choice becomes the baseline; later
	// evaluations exceeding DriftFactor × baseline mark the entry stale.
	// history keeps the most recent observations (up to historyCap) so
	// drift is visible as a trajectory, not just its endpoints.
	baselineOps int64
	lastOps     int64
	obsEvals    int64
	obsOps      int64
	history     []int64
	hits        int64
	stale       bool
}

// historyCap bounds the per-plan drift history: enough to see a trend
// build toward the DriftFactor threshold, small enough to cost nothing.
const historyCap = 16

// pushHistory appends ops to the bounded observation history.
func (e *planEntry) pushHistory(ops int64) {
	if len(e.history) == historyCap {
		copy(e.history, e.history[1:])
		e.history = e.history[:historyCap-1]
	}
	e.history = append(e.history, ops)
}

// NewPlanStore returns an empty plan cache.
func NewPlanStore(opts StoreOptions) *PlanStore {
	if opts.DriftFactor <= 1 {
		opts.DriftFactor = 2.0
	}
	if opts.CardRatio <= 1 {
		opts.CardRatio = 2.0
	}
	return &PlanStore{opts: opts, entries: map[string]*planEntry{}}
}

// Fingerprint identifies a rule across recompilations: head, source
// text, join-variable count, and the sorted multiset of body predicate
// names. It is invariant under ReorderRule, so the original plan and any
// reordered variant of it share an entry.
func Fingerprint(r *compiler.RulePlan) string {
	names := make([]string, 0, len(r.Atoms))
	for _, a := range r.Atoms {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return fmt.Sprintf("%s\x00%s\x00%d\x00%s", r.HeadName, r.Source, r.NumJoinVars, strings.Join(names, ","))
}

// Choose returns the best plan for the rule, reusing the cached order
// when it is still trusted. cached reports whether sampling was skipped.
// Trivial rules (≤1 join variable) pass through without touching the
// store, mirroring ChooseOrder.
func (s *PlanStore) Choose(r *compiler.RulePlan, rels func(name string) relation.Relation) (res *Result, cached bool, err error) {
	if s == nil {
		res, err = ChooseOrder(r, rels, Options{})
		return res, false, err
	}
	if r.NumJoinVars <= 1 || len(r.Atoms) == 0 {
		return &Result{Plan: r, Order: identity(r.NumJoinVars)}, false, nil
	}
	fp := Fingerprint(r)
	cards := inputCards(r, rels)

	s.mu.Lock()
	e, ok := s.entries[fp]
	if ok && !e.stale && cardsFresh(e.cards, cards, s.opts.CardRatio) {
		order := append([]int(nil), e.order...)
		cost := e.sampleCost
		e.hits++
		s.hits++
		s.mu.Unlock()
		plan, rerr := compiler.ReorderRule(r, order)
		if rerr != nil {
			return nil, false, rerr
		}
		return &Result{Plan: plan, Order: order, Cost: cost, Evaluated: 0}, true, nil
	}
	if ok {
		s.redecisions++
	} else {
		s.misses++
	}
	opts := s.opts.Optimizer
	s.mu.Unlock()

	res, err = ChooseOrder(r, rels, opts)
	if err != nil {
		return nil, false, err
	}
	preds := make([]string, 0, len(r.Atoms))
	seen := map[string]bool{}
	for _, a := range r.Atoms {
		base := compiler.BaseName(a.Name)
		if !seen[base] {
			seen[base] = true
			preds = append(preds, base)
		}
	}
	s.mu.Lock()
	s.entries[fp] = &planEntry{
		fingerprint: fp,
		head:        r.HeadName,
		source:      r.Source,
		order:       append([]int(nil), res.Order...),
		sampleCost:  res.Cost,
		evaluated:   res.Evaluated,
		cards:       cards,
		preds:       preds,
	}
	s.mu.Unlock()
	return res, false, nil
}

// Observe feeds one real rule evaluation's iterator-operation count back
// into the cache. The first observation after plan choice fixes the
// baseline of the obs-fed cost model; a later evaluation exceeding
// DriftFactor × baseline marks the entry stale, so the next Choose
// re-runs sampling instead of trusting the cached order.
func (s *PlanStore) Observe(r *compiler.RulePlan, ops int64) {
	if s == nil {
		return
	}
	fp := Fingerprint(r)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[fp]
	if !ok {
		return
	}
	e.obsEvals++
	e.obsOps += ops
	e.lastOps = ops
	e.pushHistory(ops)
	if e.baselineOps == 0 {
		e.baselineOps = ops
		if e.baselineOps < driftFloor {
			e.baselineOps = driftFloor
		}
		return
	}
	if float64(ops) > s.opts.DriftFactor*float64(e.baselineOps) {
		e.stale = true
	}
}

// InvalidatePreds drops every cached plan whose rule reads one of the
// named predicates (base names). The meta-engine calls this on schema
// changes so stale plans never outlive the logic they were chosen for.
func (s *PlanStore) InvalidatePreds(names map[string]bool) {
	if s == nil || len(names) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for fp, e := range s.entries {
		drop := names[compiler.BaseName(e.head)]
		for _, p := range e.preds {
			if drop {
				break
			}
			drop = names[p]
		}
		if drop {
			delete(s.entries, fp)
			s.invalidated++
		}
	}
}

// InvalidateAll empties the cache.
func (s *PlanStore) InvalidateAll() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.invalidated += int64(len(s.entries))
	s.entries = map[string]*planEntry{}
}

// Len returns the number of cached plans.
func (s *PlanStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// StoreStats summarize the cache's traffic since creation.
type StoreStats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Redecisions int64 `json:"redecisions"`
	Invalidated int64 `json:"invalidated"`
}

// Stats returns the cache's traffic counters.
func (s *PlanStore) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{Hits: s.hits, Misses: s.misses, Redecisions: s.redecisions, Invalidated: s.invalidated}
}

// PlanSnapshot is the structured value of one cached plan.
type PlanSnapshot struct {
	// Fingerprint is the store key: the structural rule fingerprint the
	// plan is cached under (stable across recompilations).
	Fingerprint string `json:"fingerprint"`
	Head        string `json:"head"`
	Source      string `json:"source"`
	Order       []int  `json:"order"`
	SampleCost  int    `json:"sample_cost"`
	Evaluated   int    `json:"evaluated"`
	Hits        int64  `json:"hits"`
	ObsEvals    int64  `json:"obs_evals"`
	ObsOps      int64  `json:"obs_ops"`
	BaselineOps int64  `json:"baseline_ops"`
	LastOps     int64  `json:"last_ops"`
	// History is the trajectory of per-evaluation iterator-operation
	// counts (most recent last, bounded): how the plan's observed cost
	// moved relative to BaselineOps over time.
	History []int64 `json:"history,omitempty"`
	Stale   bool    `json:"stale,omitempty"`
}

// Snapshot copies every cached plan, sorted by head then source.
func (s *PlanStore) Snapshot() []PlanSnapshot {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PlanSnapshot, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, PlanSnapshot{
			Fingerprint: e.fingerprint,
			Head:        e.head,
			Source:      e.source,
			Order:       append([]int(nil), e.order...),
			SampleCost:  e.sampleCost,
			Evaluated:   e.evaluated,
			Hits:        e.hits,
			ObsEvals:    e.obsEvals,
			ObsOps:      e.obsOps,
			BaselineOps: e.baselineOps,
			LastOps:     e.lastOps,
			History:     append([]int64(nil), e.history...),
			Stale:       e.stale,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Head != out[j].Head {
			return out[i].Head < out[j].Head
		}
		return out[i].Source < out[j].Source
	})
	return out
}

// SavedPlan is the durable form of one cached plan: everything needed to
// reuse the chosen order after a restart, keyed by the structural rule
// fingerprint (which survives recompilation). Observed-cost baselines are
// carried along so drift detection stays armed across restarts.
type SavedPlan struct {
	Fingerprint string
	Head        string
	Source      string
	Order       []int
	SampleCost  int
	Cards       map[string]int
	Preds       []string
	BaselineOps int64
	// History carries the recent observed-cost trajectory across
	// restarts, so a reloaded store still shows how the plan has been
	// trending (absent in snapshots written before the field existed;
	// gob leaves it nil, which reads as "no observations yet").
	History []int64
}

// Export returns the durable state of every fresh cached plan (stale
// entries are dropped: they would be re-sampled anyway). Database.Save
// embeds the result in snapshots so learned orders survive restarts.
func (s *PlanStore) Export() []SavedPlan {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SavedPlan, 0, len(s.entries))
	for fp, e := range s.entries {
		if e.stale {
			continue
		}
		cards := make(map[string]int, len(e.cards))
		for k, v := range e.cards {
			cards[k] = v
		}
		out = append(out, SavedPlan{
			Fingerprint: fp,
			Head:        e.head,
			Source:      e.source,
			Order:       append([]int(nil), e.order...),
			SampleCost:  e.sampleCost,
			Cards:       cards,
			Preds:       append([]string(nil), e.preds...),
			BaselineOps: e.baselineOps,
			History:     append([]int64(nil), e.history...),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	return out
}

// Seed installs previously exported plans into the cache (skipping
// fingerprints already present). Restored entries behave exactly like
// freshly chosen ones: they are reused while input cardinalities stay
// within CardRatio of the saved values and observed costs stay under
// DriftFactor × the saved baseline.
func (s *PlanStore) Seed(plans []SavedPlan) {
	if s == nil || len(plans) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range plans {
		if _, ok := s.entries[p.Fingerprint]; ok {
			continue
		}
		cards := make(map[string]int, len(p.Cards))
		for k, v := range p.Cards {
			cards[k] = v
		}
		s.entries[p.Fingerprint] = &planEntry{
			fingerprint: p.Fingerprint,
			head:        p.Head,
			source:      p.Source,
			order:       append([]int(nil), p.Order...),
			sampleCost:  p.SampleCost,
			cards:       cards,
			preds:       append([]string(nil), p.Preds...),
			baselineOps: p.BaselineOps,
			history:     append([]int64(nil), p.History...),
		}
	}
}

// FormatPlanTable renders a plan-store snapshot as an aligned text table
// (the REPL's :plans command).
func FormatPlanTable(stats StoreStats, plans []PlanSnapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan cache: %d plans, %d hits, %d misses, %d redecisions, %d invalidated\n",
		len(plans), stats.Hits, stats.Misses, stats.Redecisions, stats.Invalidated)
	if len(plans) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-14s %-12s %10s %6s %9s %9s %6s %-22s  %s\n",
		"HEAD", "ORDER", "SAMPLECOST", "HITS", "OBS_OPS", "BASELINE", "STALE", "DRIFT", "SOURCE")
	for _, p := range plans {
		order := make([]string, len(p.Order))
		for i, o := range p.Order {
			order[i] = fmt.Sprint(o)
		}
		stale := ""
		if p.Stale {
			stale = "stale"
		}
		src := p.Source
		if len(src) > 60 {
			src = src[:57] + "..."
		}
		fmt.Fprintf(&b, "%-14s %-12s %10d %6d %9d %9d %6s %-22s  %s\n",
			p.Head, strings.Join(order, ","), p.SampleCost, p.Hits, p.ObsOps, p.BaselineOps, stale,
			formatDrift(p.BaselineOps, p.History), src)
	}
	return b.String()
}

// formatDrift renders a plan's observed-cost trajectory compactly: the
// most recent observations (oldest first) followed by the ratio of the
// latest one to the baseline, e.g. "70,80,160 (2.5x)".
func formatDrift(baseline int64, history []int64) string {
	if len(history) == 0 {
		return "-"
	}
	show := history
	if len(show) > 5 {
		show = show[len(show)-5:]
	}
	parts := make([]string, len(show))
	for i, h := range show {
		parts[i] = fmt.Sprint(h)
	}
	out := strings.Join(parts, ",")
	if baseline > 0 {
		out += fmt.Sprintf(" (%.1fx)", float64(history[len(history)-1])/float64(baseline))
	}
	return out
}

// inputCards snapshots the cardinality of each distinct body predicate.
func inputCards(r *compiler.RulePlan, rels func(name string) relation.Relation) map[string]int {
	out := make(map[string]int, len(r.Atoms))
	for _, a := range r.Atoms {
		if _, ok := out[a.Name]; !ok {
			out[a.Name] = rels(a.Name).Len()
		}
	}
	return out
}

// cardsFresh reports whether current input cardinalities are within
// ratio of the ones recorded at plan-choice time. The +1 smoothing keeps
// empty-relation transitions from dividing by zero while still flagging
// 0→many growth.
func cardsFresh(old, cur map[string]int, ratio float64) bool {
	for name, c := range cur {
		o, ok := old[name]
		if !ok {
			return false
		}
		grow := float64(c+1) / float64(o+1)
		if grow > ratio || grow < 1/ratio {
			return false
		}
	}
	return true
}
