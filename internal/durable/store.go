package durable

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"logicblox/internal/core"
	"logicblox/internal/obs"
)

// ErrClosed reports an operation on a store that has been Closed.
var ErrClosed = errors.New("durable: store is closed")

// Fsync policies for the commit journal.
const (
	// FsyncAlways fsyncs the journal inside every commit: an
	// acknowledged commit is durable before the client sees the ack.
	FsyncAlways = "always"
	// FsyncInterval batches fsyncs on a timer: commits acknowledged in
	// the last FsyncInterval window may be lost by a crash (bounded-loss
	// group commit; much higher throughput).
	FsyncInterval = "interval"
)

// Options tunes a Store. The zero value takes the documented defaults.
type Options struct {
	// FS is the filesystem (default: the real one). The fault-injection
	// harness passes a faultfs.FS here.
	FS FS
	// Generations is how many rotated snapshot generations to keep
	// (default 3). Recovery falls back through them newest-first when a
	// generation is corrupt, so the journal is only truncated up to the
	// oldest retained generation's sequence number.
	Generations int
	// Fsync is the journal policy: FsyncAlways (default) or
	// FsyncInterval.
	Fsync string
	// FsyncInterval is the flush period under FsyncInterval (default
	// 50ms).
	FsyncInterval time.Duration
	// CheckpointEvery triggers a checkpoint after this many journaled
	// commits (default 256; <0 disables count-based checkpoints).
	CheckpointEvery int
	// CheckpointInterval triggers a periodic checkpoint when commits are
	// pending (default 30s; <0 disables timer-based checkpoints).
	CheckpointInterval time.Duration
	// Obs receives the durable.* counters, gauges and histograms; nil is
	// a valid no-op registry.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OS
	}
	if o.Generations <= 0 {
		o.Generations = 3
	}
	if o.Fsync == "" {
		o.Fsync = FsyncAlways
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 50 * time.Millisecond
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 256
	}
	if o.CheckpointInterval == 0 {
		o.CheckpointInterval = 30 * time.Second
	}
	return o
}

// Stats is a point-in-time view of the store, surfaced on /healthz.
type Stats struct {
	// Recovery outcome of the last Recover call.
	RecoveredSnapshotSeq uint64 `json:"recovered_snapshot_seq"`
	JournalReplayed      int    `json:"journal_replayed"`
	CorruptSkipped       int    `json:"corrupt_skipped"`
	// Live state.
	LastSeq            uint64 `json:"last_seq"`
	RetainedFloor      uint64 `json:"retained_floor"`
	PendingCommits     int    `json:"pending_commits"`
	Generations        int    `json:"generations"`
	LastCheckpointSeq  uint64 `json:"last_checkpoint_seq"`
	LastCheckpointUnix int64  `json:"last_checkpoint_unix"`
	FsyncPolicy        string `json:"fsync_policy"`
}

// SaveFunc writes a database snapshot payload and returns the operation
// sequence number it covers (core.Database.SaveSnapshot).
type SaveFunc func(io.Writer) (uint64, error)

// Store is the durability subsystem for one data directory: rotated
// checksummed snapshot generations plus a write-ahead commit journal.
// LogCommit is installed as the database's commit hook; Checkpoint (or
// the background checkpointer started by Start) folds the journal into
// a fresh snapshot generation. All methods are safe for concurrent use.
type Store struct {
	dir  string
	opts Options
	fsys FS
	reg  *obs.Registry

	mu       sync.Mutex // journal handle, genSeqs, pending counters
	j        *journal
	genSeqs  []uint64 // retained snapshot generations, ascending
	lastSeq  uint64   // last journaled sequence number
	pending  int      // journaled commits since the newest snapshot
	lastCkpt time.Time
	closed   bool

	// tail mirrors the journal's records above the retained floor in
	// memory — the cursor GET /journal/tail streams from, so serving a
	// follower never rereads the journal file. Populated by Recover,
	// appended by LogCommit, trimmed by Checkpoint's truncation.
	tail []core.CommitRecord
	// notify is closed and replaced under mu whenever the tail grows (or
	// the store closes): the broadcast WaitSeq long-polls on.
	notify chan struct{}

	cpMu sync.Mutex // single-flight checkpoints

	recovered Stats // recovery outcome, frozen after Recover

	kick chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup
}

// Open opens (creating if needed) the data directory and its journal.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.Fsync != FsyncAlways && opts.Fsync != FsyncInterval {
		return nil, fmt.Errorf("durable: unknown fsync policy %q (want %q or %q)", opts.Fsync, FsyncAlways, FsyncInterval)
	}
	if err := opts.FS.MkdirAll(dir); err != nil {
		return nil, err
	}
	s := &Store{
		dir:    dir,
		opts:   opts,
		fsys:   opts.FS,
		reg:    opts.Obs,
		j:      &journal{fsys: opts.FS, dir: dir},
		kick:   make(chan struct{}, 1),
		stop:   make(chan struct{}),
		notify: make(chan struct{}),
	}
	seqs, err := listGenerations(s.fsys, dir)
	if err != nil {
		return nil, err
	}
	s.genSeqs = seqs
	if err := s.j.open(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// Recover rebuilds the database this directory describes: the newest
// snapshot generation that validates (corrupt generations are skipped,
// counted in durable.corrupt_skipped) plus a replay of the journal tail
// through the normal transaction path (derived predicates re-derive;
// paper T4 #5). fresh supplies the database when the directory holds no
// usable snapshot. The returned database has no commit hook installed
// yet — callers attach the store with db.SetCommitHook(store.LogCommit)
// after recovery, so replay cannot re-journal itself.
func (s *Store) Recover(fresh func() (*core.Database, error)) (*core.Database, error) {
	var db *core.Database
	var snapSeq uint64
	corrupt := 0
	found := false
	s.mu.Lock()
	gens := append([]uint64(nil), s.genSeqs...)
	s.mu.Unlock()
	for i := len(gens) - 1; i >= 0; i-- {
		path := filepath.Join(s.dir, snapName(gens[i]))
		payload, err := ReadSnapshotFile(s.fsys, path)
		if err == nil {
			db, err = core.LoadDatabase(bytes.NewReader(payload))
		}
		if err != nil {
			// Fall back to the previous generation on any unusable
			// snapshot; the journal keeps records back to the oldest
			// retained generation, so no acknowledged commit is lost.
			corrupt++
			s.reg.Counter("durable.corrupt_skipped").Inc()
			db = nil
			continue
		}
		snapSeq = gens[i]
		found = true
		break
	}
	if db == nil {
		var err error
		db, err = fresh()
		if err != nil {
			return nil, err
		}
	}

	s.mu.Lock()
	recs, torn, err := s.j.load()
	s.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("durable: reading journal: %w", err)
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	replayed := 0
	for _, rec := range recs {
		if rec.Seq <= snapSeq {
			continue
		}
		if err := db.ApplyRecord(rec); err != nil {
			return nil, fmt.Errorf("durable: journal %w", err)
		}
		replayed++
		s.reg.Counter("durable.journal_replayed").Inc()
	}
	if found || len(recs) > 0 {
		s.reg.Counter("durable.recoveries").Inc()
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastSeq = snapSeq
	if n := len(recs); n > 0 && recs[n-1].Seq > s.lastSeq {
		s.lastSeq = recs[n-1].Seq
	}
	db.AlignSeq(s.lastSeq)
	s.pending = 0
	newest := uint64(0)
	if len(s.genSeqs) > 0 {
		newest = s.genSeqs[len(s.genSeqs)-1]
	}
	for _, rec := range recs {
		if rec.Seq > newest {
			s.pending++
		}
	}
	keepAfter := uint64(0)
	if len(s.genSeqs) > 0 {
		keepAfter = s.genSeqs[0]
	}
	kept := recs[:0:0]
	for _, rec := range recs {
		if rec.Seq > keepAfter {
			kept = append(kept, rec)
		}
	}
	if torn {
		// The file ends in a torn frame; appends after it would be
		// unreachable to replay. Rewrite the journal to exactly the
		// valid records (keeping everything the retained generations
		// might still need).
		if err := s.j.rewrite(kept); err != nil {
			return nil, err
		}
	}
	// Seed the in-memory tail cursor with the records above the retained
	// floor — what a tailing follower may still be served.
	s.tail = append([]core.CommitRecord(nil), kept...)
	s.bumpLocked()
	s.recovered = Stats{
		RecoveredSnapshotSeq: snapSeq,
		JournalReplayed:      replayed,
		CorruptSkipped:       corrupt,
	}
	s.reg.Gauge("durable.recovered_seq").Set(int64(s.lastSeq))
	return db, nil
}

// LogCommit appends one commit record to the journal; it is the
// core.CommitHook a durable database runs with. Under FsyncAlways the
// record is on stable storage when LogCommit returns — and only then
// does the in-memory commit proceed and the client see an ack. It runs
// under the database's commit lock, so records are journaled in exactly
// commit order.
func (s *Store) LogCommit(rec core.CommitRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.j.append(rec, s.opts.Fsync == FsyncAlways); err != nil {
		return err
	}
	s.lastSeq = rec.Seq
	s.pending++
	// Only a fully journaled (and, under FsyncAlways, fsynced) record
	// enters the tail cursor: followers can never be streamed a commit
	// the primary did not acknowledge.
	s.tail = append(s.tail, rec)
	s.bumpLocked()
	s.reg.Counter("durable.journal_appends").Inc()
	if s.opts.CheckpointEvery > 0 && s.pending >= s.opts.CheckpointEvery {
		select {
		case s.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

// Checkpoint writes a fresh snapshot generation covering everything
// committed so far and truncates the journal up to the oldest retained
// generation. Ordering makes a crash at any point safe: the snapshot is
// fully durable (temp+fsync+rename+dirsync) before any journal record
// is dropped, and the journal rewrite is itself atomic.
func (s *Store) Checkpoint(save SaveFunc) error {
	s.cpMu.Lock()
	defer s.cpMu.Unlock()
	t0 := time.Now()

	var buf bytes.Buffer
	seq, err := save(&buf)
	if err != nil {
		return fmt.Errorf("durable: checkpoint save: %w", err)
	}
	s.mu.Lock()
	already := len(s.genSeqs) > 0 && s.genSeqs[len(s.genSeqs)-1] >= seq
	s.mu.Unlock()
	if already {
		return nil // nothing committed since the newest generation
	}
	framed := frameSnapshot(buf.Bytes())
	if err := writeFileAtomic(s.fsys, filepath.Join(s.dir, snapName(seq)), func(w io.Writer) error {
		_, werr := w.Write(framed)
		return werr
	}); err != nil {
		return fmt.Errorf("durable: checkpoint snapshot: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.genSeqs = append(s.genSeqs, seq)
	sort.Slice(s.genSeqs, func(i, j int) bool { return s.genSeqs[i] < s.genSeqs[j] })
	if s.genSeqs, err = pruneGenerations(s.fsys, s.dir, s.genSeqs, s.opts.Generations); err != nil {
		return fmt.Errorf("durable: pruning generations: %w", err)
	}

	// Truncate the journal, keeping every record a retained generation
	// might still need for fallback recovery (records newer than the
	// oldest generation, not merely newer than this one).
	recs, _, err := s.j.load()
	if err != nil {
		return fmt.Errorf("durable: checkpoint journal read: %w", err)
	}
	keepAfter := s.genSeqs[0]
	kept := recs[:0:0]
	pending := 0
	for _, rec := range recs {
		if rec.Seq > keepAfter {
			kept = append(kept, rec)
		}
		if rec.Seq > seq {
			pending++
		}
	}
	if err := s.j.rewrite(kept); err != nil {
		return err
	}
	s.tail = append(s.tail[:0:0], kept...)
	s.bumpLocked()
	s.pending = pending
	s.lastCkpt = time.Now()
	s.reg.Counter("durable.checkpoints").Inc()
	s.reg.Gauge("durable.checkpoint_seq").Set(int64(seq))
	s.reg.Histogram("durable.checkpoint_seconds").Observe(time.Since(t0))
	return nil
}

// Start launches the background loops: the checkpointer (fired by
// commit volume per CheckpointEvery, or by time per CheckpointInterval
// when commits are pending) and, under FsyncInterval, the journal
// flusher. Close stops them.
func (s *Store) Start(save SaveFunc) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		var ckptC, flushC <-chan time.Time
		if s.opts.CheckpointInterval > 0 {
			t := time.NewTicker(s.opts.CheckpointInterval)
			defer t.Stop()
			ckptC = t.C
		}
		if s.opts.Fsync == FsyncInterval {
			t := time.NewTicker(s.opts.FsyncInterval)
			defer t.Stop()
			flushC = t.C
		}
		for {
			select {
			case <-s.stop:
				return
			case <-s.kick:
				s.checkpointLogged(save)
			case <-ckptC:
				s.mu.Lock()
				pending := s.pending
				s.mu.Unlock()
				if pending > 0 {
					s.checkpointLogged(save)
				}
			case <-flushC:
				s.mu.Lock()
				err := s.j.sync()
				s.mu.Unlock()
				if err != nil {
					s.reg.Counter("durable.flush_errors").Inc()
				}
			}
		}
	}()
}

func (s *Store) checkpointLogged(save SaveFunc) {
	if err := s.Checkpoint(save); err != nil {
		s.reg.Counter("durable.checkpoint_errors").Inc()
	}
}

// bumpLocked wakes every WaitSeq long-poller. Callers hold s.mu.
func (s *Store) bumpLocked() {
	close(s.notify)
	s.notify = make(chan struct{})
}

// Floor returns the retained floor: the oldest snapshot generation's
// sequence number. The journal — and the tail cursor — keep every record
// strictly after it, so a follower at sequence >= Floor can stream; one
// behind it must resync from a full snapshot.
func (s *Store) Floor() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.floorLocked()
}

func (s *Store) floorLocked() uint64 {
	if len(s.genSeqs) == 0 {
		return 0
	}
	return s.genSeqs[0]
}

// TailSince returns a copy of every journaled record with Seq > fromSeq,
// in ascending order, plus the current head and floor. A fromSeq below
// the retained floor is ErrJournalTruncated: checkpointing already
// dropped records the caller never saw, so streaming would leave a
// silent gap — the caller must resync from a snapshot instead.
func (s *Store) TailSince(fromSeq uint64) (recs []core.CommitRecord, head, floor uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	floor = s.floorLocked()
	if fromSeq < floor {
		return nil, s.lastSeq, floor, fmt.Errorf("%w: requested > %d, retained > %d", ErrJournalTruncated, fromSeq, floor)
	}
	for _, rec := range s.tail {
		if rec.Seq > fromSeq {
			recs = append(recs, rec)
		}
	}
	return recs, s.lastSeq, floor, nil
}

// WaitSeq blocks until a record with Seq > after is journaled, the
// context ends, or the store closes (reported as ErrClosed so pollers
// distinguish shutdown from cancellation).
func (s *Store) WaitSeq(ctx context.Context, after uint64) error {
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return ErrClosed
		}
		if s.lastSeq > after {
			s.mu.Unlock()
			return nil
		}
		ch := s.notify
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// Stats reports the store's current state (for /healthz and tests).
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.recovered
	st.LastSeq = s.lastSeq
	st.RetainedFloor = s.floorLocked()
	st.PendingCommits = s.pending
	st.Generations = len(s.genSeqs)
	if len(s.genSeqs) > 0 {
		st.LastCheckpointSeq = s.genSeqs[len(s.genSeqs)-1]
	}
	if !s.lastCkpt.IsZero() {
		st.LastCheckpointUnix = s.lastCkpt.Unix()
	}
	st.FsyncPolicy = s.opts.Fsync
	return st
}

// Close stops the background loops and closes the journal, flushing any
// pending appends.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.bumpLocked() // wake WaitSeq pollers so they see the close
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.j.close()
}
