package core

import (
	"fmt"
	"sort"

	"logicblox/internal/analysis/logiql"
	"logicblox/internal/ast"
	"logicblox/internal/parser"
)

// CheckProgram runs the warning-tier LogiQL checker over the workspace's
// installed logic merged with an optional candidate program. The merge
// matters: a rule is dead or unconsumed relative to the whole workspace,
// not its own block — installing a block that replaces another rule's
// only consumer makes the producer unconsumed, and this is where that
// surfaces. src may be empty to audit just the installed blocks.
//
// Warnings never reject the program; a candidate that fails to parse is
// the only error (wrapped ErrParse). Surfaced through `lb :check` and
// the server's POST /check.
func (ws *Workspace) CheckProgram(src string) ([]logiql.Warning, error) {
	var candidate *ast.Program
	if src != "" {
		prog, err := parser.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("check %w: %w", ErrParse, err)
		}
		candidate = prog
	}
	parsed := ws.parsedBlocks()
	var names []string
	for n := range parsed {
		names = append(names, n)
	}
	sort.Strings(names)
	merged := &ast.Program{}
	for _, n := range names {
		merged.Clauses = append(merged.Clauses, parsed[n].Clauses...)
	}
	if candidate != nil {
		merged.Clauses = append(merged.Clauses, candidate.Clauses...)
	}
	return logiql.CheckProgram(merged), nil
}
