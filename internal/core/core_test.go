package core

import (
	"bytes"
	"strings"
	"testing"

	"logicblox/internal/tuple"
)

func mustAddBlock(t *testing.T, ws *Workspace, name, src string) *Workspace {
	t.Helper()
	out, err := ws.AddBlock(name, src)
	if err != nil {
		t.Fatalf("AddBlock(%s): %v", name, err)
	}
	return out
}

func mustExec(t *testing.T, ws *Workspace, src string) *Workspace {
	t.Helper()
	res, err := ws.Exec(src)
	if err != nil {
		t.Fatalf("Exec(%q): %v", src, err)
	}
	return res.Workspace
}

func TestAddBlockAndQuery(t *testing.T) {
	ws := NewWorkspace()
	ws = mustAddBlock(t, ws, "schema", `
		profit[sku] = z <- sellingPrice[sku] = x, buyingPrice[sku] = y, z = x - y.`)
	ws = mustExec(t, ws, `
		+sellingPrice["a"] = 10.
		+sellingPrice["b"] = 7.
		+buyingPrice["a"] = 6.
		+buyingPrice["b"] = 5.`)
	rows, err := ws.Query(`_(sku, p) <- profit[sku] = p.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("query rows = %v", rows)
	}
	if rows[0][0].AsString() != "a" || rows[0][1].AsInt() != 4 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestExecReactiveRuleFromPaper(t *testing.T) {
	// §2.2.1: discount popsicles when January sales are low and a
	// promotion is being created.
	ws := NewWorkspace()
	ws = mustAddBlock(t, ws, "schema", `
		price[p] = v -> string(p), float(v).
		sales[p, m] = v -> string(p), string(m), int(v).`)
	ws = mustExec(t, ws, `
		+price["Popsicle"] = 1.0.
		+sales["Popsicle", "2015-01"] = 30.`)
	ws = mustExec(t, ws, `
		^price["Popsicle"] = y <-
			price@start["Popsicle"] = x,
			sales@start["Popsicle", "2015-01"] < 50,
			+promo("Popsicle", "2015-01"),
			y = 0.8 * x.
		+promo("Popsicle", "2015-01").`)
	if v, ok := ws.Relation("price").FuncGet(tuple.Strings("Popsicle")); !ok || v.AsFloat() != 0.8 {
		t.Fatalf("price after discount = %v, %v", v, ok)
	}
	if !ws.Relation("promo").Contains(tuple.Strings("Popsicle", "2015-01")) {
		t.Fatalf("promo fact missing")
	}
}

func TestExecUpsertReplacesFunctionalValue(t *testing.T) {
	ws := NewWorkspace()
	ws = mustAddBlock(t, ws, "s", `inventory[x] = v -> string(x), int(v).`)
	ws = mustExec(t, ws, `+inventory["widget"] = 5.`)
	ws = mustExec(t, ws, `
		^inventory["widget"] = y <- inventory@start["widget"] = x, y = x - 1.`)
	rel := ws.Relation("inventory")
	if rel.Len() != 1 {
		t.Fatalf("inventory = %v", rel.Slice())
	}
	if v, _ := rel.FuncGet(tuple.Strings("widget")); v.AsInt() != 4 {
		t.Fatalf("inventory[widget] = %v", v)
	}
}

func TestExecDeleteAndDerivedMaintenance(t *testing.T) {
	ws := NewWorkspace()
	ws = mustAddBlock(t, ws, "s", `
		place_order(x) <- inventory[x] = 0, auto_order(x).`)
	ws = mustExec(t, ws, `
		+inventory["Popsicle"] = 1.
		+auto_order("Popsicle").`)
	if ws.Relation("place_order").Len() != 0 {
		t.Fatalf("order placed too early")
	}
	ws = mustExec(t, ws, `
		^inventory["Popsicle"] = x <- inventory@start["Popsicle"] = y, x = y - 1.`)
	if !ws.Relation("place_order").Contains(tuple.Strings("Popsicle")) {
		t.Fatalf("place_order not derived: %v", ws.Relation("place_order").Slice())
	}
	// Explicit deletion.
	ws = mustExec(t, ws, `-auto_order("Popsicle").`)
	if ws.Relation("place_order").Len() != 0 {
		t.Fatalf("place_order not retracted")
	}
}

func TestConstraintAbortsTransaction(t *testing.T) {
	ws := NewWorkspace()
	ws = mustAddBlock(t, ws, "s", `
		Stock[p] = v -> float(v).
		maxStock[p] = v -> float(v).
		Stock[p] = v, maxStock[p] = m -> v <= m.`)
	ws = mustExec(t, ws, `+maxStock["a"] = 10.0. +Stock["a"] = 5.0.`)
	before := ws
	_, err := ws.Exec(`^Stock["a"] = 50.0.`)
	if err == nil || !strings.Contains(err.Error(), "constraint") {
		t.Fatalf("expected constraint violation, got %v", err)
	}
	// Aborting leaves the previous version untouched.
	if v, _ := before.Relation("Stock").FuncGet(tuple.Strings("a")); v.AsFloat() != 5.0 {
		t.Fatalf("aborted transaction mutated the workspace")
	}
}

func TestAddBlockLiveProgramming(t *testing.T) {
	ws := NewWorkspace()
	ws = mustAddBlock(t, ws, "data", `sales(p, w) -> string(p), int(w).`)
	ws = mustExec(t, ws, `+sales("a", 1). +sales("a", 2). +sales("b", 1).`)
	// Install a view after the data exists.
	ws = mustAddBlock(t, ws, "salesAgg1", `
		salesCount[p] = c <- agg<<c = count()>> sales(p, w).`)
	if v, _ := ws.Relation("salesCount").FuncGet(tuple.Strings("a")); v.AsInt() != 2 {
		t.Fatalf("salesCount[a] = %v", v)
	}
	// Remove it again: the view disappears.
	ws2, err := ws.RemoveBlock("salesAgg1")
	if err != nil {
		t.Fatal(err)
	}
	if ws2.Relation("salesCount").Len() != 0 {
		t.Fatalf("removed view still materialized")
	}
	// And the original is untouched (persistence).
	if ws.Relation("salesCount").Len() != 2 {
		t.Fatalf("original version mutated")
	}
}

func TestAddBlockRejectsDuplicatesAndBadSyntax(t *testing.T) {
	ws := NewWorkspace()
	ws = mustAddBlock(t, ws, "b", `v(x) <- r(x).`)
	if _, err := ws.AddBlock("b", `w(x) <- r(x).`); err == nil {
		t.Fatal("duplicate block accepted")
	}
	if _, err := ws.AddBlock("bad", `v(x <- r(x).`); err == nil {
		t.Fatal("syntax error accepted")
	}
	if _, err := ws.RemoveBlock("nope"); err == nil {
		t.Fatal("removing unknown block accepted")
	}
}

func TestRecursiveViewInWorkspace(t *testing.T) {
	ws := NewWorkspace()
	ws = mustAddBlock(t, ws, "tc", `
		path(x, y) <- edge(x, y).
		path(x, z) <- path(x, y), edge(y, z).`)
	ws = mustExec(t, ws, `+edge(1, 2). +edge(2, 3).`)
	if !ws.Relation("path").Contains(tuple.Ints(1, 3)) {
		t.Fatalf("path = %v", ws.Relation("path").Slice())
	}
	ws = mustExec(t, ws, `-edge(2, 3). +edge(2, 4).`)
	p := ws.Relation("path")
	if p.Contains(tuple.Ints(1, 3)) || !p.Contains(tuple.Ints(1, 4)) {
		t.Fatalf("path after update = %v", p.Slice())
	}
}

func TestInsertDeleteConvenience(t *testing.T) {
	ws := NewWorkspace()
	ws = mustAddBlock(t, ws, "v", `big(x) <- n(x, v), v > 10.`)
	ws, err := ws.Insert("n", tuple.Ints(1, 20), tuple.Ints(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !ws.Relation("big").Contains(tuple.Ints(1)) || ws.Relation("big").Len() != 1 {
		t.Fatalf("big = %v", ws.Relation("big").Slice())
	}
	ws, err = ws.Delete("n", tuple.Ints(1, 20))
	if err != nil {
		t.Fatal(err)
	}
	if ws.Relation("big").Len() != 0 {
		t.Fatalf("big after delete = %v", ws.Relation("big").Slice())
	}
	if _, err := ws.Insert("big", tuple.Ints(9)); err == nil {
		t.Fatal("inserting into derived predicate accepted")
	}
}

func TestDatabaseBranching(t *testing.T) {
	db := NewDatabase()
	ws, _ := db.Workspace(DefaultBranch)
	ws = mustAddBlock(t, ws, "s", `total[] = u <- agg<<u = sum(v)>> item(x, v).`)
	ws = mustExec(t, ws, `+item("a", 10).`)
	if err := db.Commit(DefaultBranch, ws); err != nil {
		t.Fatal(err)
	}

	// Branch for what-if analysis.
	if err := db.Branch(DefaultBranch, "whatif"); err != nil {
		t.Fatal(err)
	}
	wf, _ := db.Workspace("whatif")
	wf = mustExec(t, wf, `+item("b", 100).`)
	if err := db.Commit("whatif", wf); err != nil {
		t.Fatal(err)
	}

	// The branches evolved independently.
	mainWs, _ := db.Workspace(DefaultBranch)
	whatifWs, _ := db.Workspace("whatif")
	vMain, _ := mainWs.Relation("total").FuncGet(tuple.Tuple{})
	vWhatif, _ := whatifWs.Relation("total").FuncGet(tuple.Tuple{})
	if vMain.AsInt() != 10 || vWhatif.AsInt() != 110 {
		t.Fatalf("main=%v whatif=%v", vMain, vWhatif)
	}

	// Time travel: branch from the first committed version.
	if err := db.BranchAt(0, "genesis"); err != nil {
		t.Fatal(err)
	}
	g, _ := db.Workspace("genesis")
	if len(g.Blocks()) != 0 {
		t.Fatalf("genesis should be empty")
	}

	if err := db.DeleteBranch("whatif"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Workspace("whatif"); err == nil {
		t.Fatal("deleted branch still accessible")
	}
	if err := db.DeleteBranch(DefaultBranch); err == nil {
		t.Fatal("deleting main should fail")
	}
	if db.Versions() < 3 {
		t.Fatalf("history too short: %d", db.Versions())
	}
}

func TestQueryWithAuxiliaryRules(t *testing.T) {
	ws := NewWorkspace()
	ws = mustAddBlock(t, ws, "s", `sales(p, v) -> string(p), int(v).`)
	ws = mustExec(t, ws, `+sales("a", 1). +sales("a", 2). +sales("b", 7).`)
	rows, err := ws.Query(`
		bySku[p] = u <- agg<<u = sum(v)>> sales(p, v).
		_(p, u) <- bySku[p] = u, u > 2.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	// Queries must not leave auxiliary predicates behind.
	if ws.Relation("bySku").Len() != 0 {
		t.Fatalf("query leaked state into workspace")
	}
}

func TestExecAuditLogReactiveRule(t *testing.T) {
	ws := NewWorkspace()
	ws = mustAddBlock(t, ws, "s", `
		audit(x) <- +item(x).`)
	ws = mustExec(t, ws, `+item("a").`)
	if !ws.Relation("audit").Contains(tuple.Strings("a")) {
		t.Fatalf("audit = %v", ws.Relation("audit").Slice())
	}
	ws = mustExec(t, ws, `+item("b").`)
	// The audit log accumulates across transactions.
	if ws.Relation("audit").Len() != 2 {
		t.Fatalf("audit = %v", ws.Relation("audit").Slice())
	}
}

func TestWorkspaceWithOptimizer(t *testing.T) {
	build := func(opt bool) *Workspace {
		ws := NewWorkspace()
		if opt {
			ws = ws.WithOptimizer(true)
		}
		ws = mustAddBlock(t, ws, "g", `
			edge(x, y) -> int(x), int(y).
			tri(x, y, z) <- edge(x, y), edge(y, z), edge(x, z).`)
		ws = mustExec(t, ws, `+edge(1, 2). +edge(2, 3). +edge(1, 3). +edge(3, 4).`)
		return ws
	}
	plain, optimized := build(false), build(true)
	if !plain.Relation("tri").Equal(optimized.Relation("tri")) {
		t.Fatalf("optimizer changed results: %v vs %v",
			plain.Relation("tri").Slice(), optimized.Relation("tri").Slice())
	}
	// The flag survives transactions.
	next := mustExec(t, optimized, `+edge(2, 4).`)
	if !next.Relation("tri").Contains(tuple.Ints(2, 3, 4)) {
		t.Fatalf("tri after insert = %v", next.Relation("tri").Slice())
	}
}

func TestSaveAndLoadDatabase(t *testing.T) {
	db := NewDatabase()
	ws, _ := db.Workspace(DefaultBranch)
	ws = mustAddBlock(t, ws, "s", `
		price[p] = v -> string(p), float(v).
		cheap(p) <- price[p] = v, v < 2.0.`)
	ws = mustExec(t, ws, `+price["a"] = 1.0. +price["b"] = 3.0.`)
	if err := db.Commit(DefaultBranch, ws); err != nil {
		t.Fatal(err)
	}
	if err := db.Branch(DefaultBranch, "side"); err != nil {
		t.Fatal(err)
	}
	side, _ := db.Workspace("side")
	side = mustExec(t, side, `+price["c"] = 0.5.`)
	if err := db.Commit("side", side); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Both branches and their derived views survive the round trip.
	mainWs, err := restored.Workspace(DefaultBranch)
	if err != nil {
		t.Fatal(err)
	}
	if !mainWs.Relation("cheap").Contains(tuple.Strings("a")) || mainWs.Relation("cheap").Len() != 1 {
		t.Fatalf("restored main cheap = %v", mainWs.Relation("cheap").Slice())
	}
	sideWs, err := restored.Workspace("side")
	if err != nil {
		t.Fatal(err)
	}
	if sideWs.Relation("cheap").Len() != 2 {
		t.Fatalf("restored side cheap = %v", sideWs.Relation("cheap").Slice())
	}
	// The restored database keeps working: transactions, constraints, views.
	next := mustExec(t, mainWs, `+price["d"] = 1.5.`)
	if !next.Relation("cheap").Contains(tuple.Strings("d")) {
		t.Fatalf("restored workspace does not derive: %v", next.Relation("cheap").Slice())
	}
}

func TestLoadDatabaseRejectsGarbage(t *testing.T) {
	if _, err := LoadDatabase(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestSnapshotValueRoundTrip(t *testing.T) {
	vals := []tuple.Value{
		tuple.Bool(true), tuple.Bool(false), tuple.Int(-7), tuple.Float(2.5),
		tuple.String("x"), tuple.Entity(3, 9), tuple.Null,
	}
	for _, v := range vals {
		got := dtoToValue(valueToDTO(v))
		if !tuple.Equal(got, v) {
			t.Errorf("round trip %v → %v", v, got)
		}
	}
}
