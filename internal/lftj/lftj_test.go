package lftj

import (
	"math/rand"
	"testing"
	"testing/quick"

	"logicblox/internal/relation"
	"logicblox/internal/trie"
	"logicblox/internal/tuple"
)

func unary(vals ...int64) relation.Relation {
	r := relation.New(1)
	for _, v := range vals {
		r = r.Insert(tuple.Ints(v))
	}
	return r
}

func binary(pairs ...[2]int64) relation.Relation {
	r := relation.New(2)
	for _, p := range pairs {
		r = r.Insert(tuple.Ints(p[0], p[1]))
	}
	return r
}

// TestFig3UnaryLeapfrog reproduces the paper's Figure 3: the join of
// A = {0,1,3,4,5,6,7,8,9,11}, B = {0,2,6,7,8,9}, C = {2,4,5,8,10}
// yields exactly {8}.
func TestFig3UnaryLeapfrog(t *testing.T) {
	a := unary(0, 1, 3, 4, 5, 6, 7, 8, 9, 11)
	b := unary(0, 2, 6, 7, 8, 9)
	c := unary(2, 4, 5, 8, 10)
	got := Intersect(a.Iterator(), b.Iterator(), c.Iterator())
	if len(got) != 1 || got[0].AsInt() != 8 {
		t.Fatalf("A∩B∩C = %v, want [8]", got)
	}
}

// TestFig3SensitivityIntervals checks the recorded sensitivity intervals
// against the paper's published trace for Figure 3.
func TestFig3SensitivityIntervals(t *testing.T) {
	a := unary(0, 1, 3, 4, 5, 6, 7, 8, 9, 11)
	b := unary(0, 2, 6, 7, 8, 9)
	c := unary(2, 4, 5, 8, 10)
	idx := NewSensitivityIndex()
	j, err := NewJoin(1, []Atom{
		{Pred: "A", Iter: a.Iterator(), Vars: []int{0}},
		{Pred: "B", Iter: b.Iterator(), Vars: []int{0}},
		{Pred: "C", Iter: c.Iterator(), Vars: []int{0}},
	}, idx)
	if err != nil {
		t.Fatal(err)
	}
	if got := j.Collect(); len(got) != 1 || got[0][0].AsInt() != 8 {
		t.Fatalf("join = %v", got)
	}

	// Paper (§3.2): inserting C(3) or deleting C(4) must NOT affect the
	// run; the published sensitive regions must.
	type probe struct {
		pred     string
		v        int64
		affected bool
	}
	probes := []probe{
		{"C", 3, false}, // inside seek(6)'s skipped gap (4,6) — wait: paper says C(3) unaffected
		{"A", 0, true},  // [-inf,0]
		{"A", 2, true},  // [2,3]
		{"A", 3, true},
		{"A", 8, true},  // [8,8]
		{"A", 10, true}, // [10,11]
		{"A", 5, false}, // between recorded intervals
		{"B", 0, true},  // [-inf,0]
		{"B", 4, true},  // [3,6]
		{"B", 12, true}, // [11,+inf]
		{"B", 7, false},
		{"C", 1, true}, // [-inf,2]
		{"C", 7, true}, // [6,8]
		{"C", 9, true}, // [8,10]
		{"C", 11, false},
	}
	for _, p := range probes {
		if got := idx.Affected(p.pred, tuple.Ints(p.v)); got != p.affected {
			t.Errorf("Affected(%s, %d) = %v, want %v\nintervals: %v",
				p.pred, p.v, got, p.affected, idx.Intervals(p.pred))
		}
	}
}

// TestFig3DeleteC4Unaffected is the paper's explicit example: deleting the
// fact C(4) does not affect the computation.
func TestFig3DeleteC4Unaffected(t *testing.T) {
	a := unary(0, 1, 3, 4, 5, 6, 7, 8, 9, 11)
	b := unary(0, 2, 6, 7, 8, 9)
	c := unary(2, 4, 5, 8, 10)
	idx := NewSensitivityIndex()
	j, _ := NewJoin(1, []Atom{
		{Pred: "A", Iter: a.Iterator(), Vars: []int{0}},
		{Pred: "B", Iter: b.Iterator(), Vars: []int{0}},
		{Pred: "C", Iter: c.Iterator(), Vars: []int{0}},
	}, idx)
	j.Run(func(tuple.Tuple) bool { return true })
	if idx.Affected("C", tuple.Ints(4)) {
		t.Errorf("deleting C(4) should not affect the run; intervals: %v", idx.Intervals("C"))
	}
}

func TestIntersectEmptyAndDisjoint(t *testing.T) {
	if got := Intersect(unary().Iterator(), unary(1).Iterator()); len(got) != 0 {
		t.Fatalf("intersect with empty = %v", got)
	}
	if got := Intersect(unary(1, 3).Iterator(), unary(2, 4).Iterator()); len(got) != 0 {
		t.Fatalf("disjoint intersect = %v", got)
	}
	got := Intersect(unary(5).Iterator(), unary(5).Iterator(), trie.NewConstIterator(tuple.Int(5)))
	if len(got) != 1 || got[0].AsInt() != 5 {
		t.Fatalf("const participation = %v", got)
	}
}

func TestTriangleJoin(t *testing.T) {
	// R(a,b), S(b,c), T(a,c) with a small instance having known output.
	r := binary([2]int64{1, 2}, [2]int64{1, 3}, [2]int64{2, 3})
	s := binary([2]int64{2, 3}, [2]int64{3, 4}, [2]int64{2, 4})
	tt := binary([2]int64{1, 3}, [2]int64{1, 4}, [2]int64{2, 4})
	// Consistent order [a,b,c]: R(a,b): vars 0,1; S(b,c): vars 1,2; T(a,c): vars 0,2.
	j, err := NewJoin(3, []Atom{
		{Pred: "R", Iter: r.Iterator(), Vars: []int{0, 1}},
		{Pred: "S", Iter: s.Iterator(), Vars: []int{1, 2}},
		{Pred: "T", Iter: tt.Iterator(), Vars: []int{0, 2}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := j.Collect()
	// Expected: (1,2,3): R(1,2),S(2,3),T(1,3) ✓; (1,2,4): R(1,2),S(2,4),T(1,4) ✓;
	// (1,3,4): R(1,3),S(3,4),T(1,4) ✓; (2,?,?): R(2,3),S(3,4),T(2,4) ✓ → (2,3,4).
	want := []tuple.Tuple{tuple.Ints(1, 2, 3), tuple.Ints(1, 2, 4), tuple.Ints(1, 3, 4), tuple.Ints(2, 3, 4)}
	if len(got) != len(want) {
		t.Fatalf("triangle join = %v, want %v", got, want)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("triangle join[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// naiveJoin computes R(a,b) ⋈ S(b,c) ⋈ T(a,c) by nested loops, as a model.
func naiveTriangles(r, s, t relation.Relation) map[[3]int64]bool {
	out := map[[3]int64]bool{}
	for _, rt := range r.Slice() {
		for _, st := range s.Slice() {
			if !tuple.Equal(rt[1], st[0]) {
				continue
			}
			if t.Contains(tuple.Of(rt[0], st[1])) {
				out[[3]int64{rt[0].AsInt(), rt[1].AsInt(), st[1].AsInt()}] = true
			}
		}
	}
	return out
}

func TestTriangleJoinRandomizedAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		mk := func() relation.Relation {
			r := relation.New(2)
			for i := 0; i < rng.Intn(60); i++ {
				r = r.Insert(tuple.Ints(rng.Int63n(10), rng.Int63n(10)))
			}
			return r
		}
		r, s, tt := mk(), mk(), mk()
		j, err := NewJoin(3, []Atom{
			{Pred: "R", Iter: r.Iterator(), Vars: []int{0, 1}},
			{Pred: "S", Iter: s.Iterator(), Vars: []int{1, 2}},
			{Pred: "T", Iter: tt.Iterator(), Vars: []int{0, 2}},
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveTriangles(r, s, tt)
		got := map[[3]int64]bool{}
		j.Run(func(b tuple.Tuple) bool {
			got[[3]int64{b[0].AsInt(), b[1].AsInt(), b[2].AsInt()}] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: missing %v", trial, k)
			}
		}
	}
}

func TestJoinWithConstantAtom(t *testing.T) {
	// A(x, y), y = 2 via a virtual constant predicate on variable y.
	a := binary([2]int64{1, 2}, [2]int64{1, 5}, [2]int64{3, 2})
	j, err := NewJoin(2, []Atom{
		{Pred: "A", Iter: a.Iterator(), Vars: []int{0, 1}},
		{Pred: "$const2", Iter: trie.NewConstIterator(tuple.Int(2)), Vars: []int{1}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := j.Collect()
	if len(got) != 2 || got[0][0].AsInt() != 1 || got[1][0].AsInt() != 3 {
		t.Fatalf("const-filtered join = %v", got)
	}
}

func TestJoinValidation(t *testing.T) {
	a := binary([2]int64{1, 2})
	if _, err := NewJoin(2, []Atom{{Pred: "A", Iter: a.Iterator(), Vars: []int{1, 0}}}, nil); err == nil {
		t.Fatal("inconsistent variable order should be rejected")
	}
	if _, err := NewJoin(2, []Atom{{Pred: "A", Iter: a.Iterator(), Vars: []int{0}}}, nil); err == nil {
		t.Fatal("arity mismatch should be rejected")
	}
	if _, err := NewJoin(3, []Atom{{Pred: "A", Iter: a.Iterator(), Vars: []int{0, 1}}}, nil); err == nil {
		t.Fatal("uncovered variable should be rejected")
	}
	if _, err := NewJoin(2, []Atom{{Pred: "A", Iter: a.Iterator(), Vars: []int{0, 5}}}, nil); err == nil {
		t.Fatal("out-of-range variable should be rejected")
	}
}

func TestJoinEarlyTermination(t *testing.T) {
	a := unary(1, 2, 3, 4, 5)
	j, _ := NewJoin(1, []Atom{{Pred: "A", Iter: a.Iterator(), Vars: []int{0}}}, nil)
	n := 0
	j.Run(func(tuple.Tuple) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("emit called %d times, want 2", n)
	}
}

func TestJoinReuseAfterRun(t *testing.T) {
	// A Join over fresh iterators can be run once; build twice to verify
	// determinism of results.
	build := func() *Join {
		a := binary([2]int64{1, 2}, [2]int64{2, 3})
		b := binary([2]int64{2, 9}, [2]int64{3, 9})
		j, _ := NewJoin(3, []Atom{
			{Pred: "A", Iter: a.Iterator(), Vars: []int{0, 1}},
			{Pred: "B", Iter: b.Iterator(), Vars: []int{1, 2}},
		}, nil)
		return j
	}
	r1 := build().Collect()
	r2 := build().Collect()
	if len(r1) != 2 || len(r1) != len(r2) {
		t.Fatalf("deterministic rebuild mismatch: %v vs %v", r1, r2)
	}
}

func TestSensitivityIndexPointAndMerge(t *testing.T) {
	x := NewSensitivityIndex()
	x.AddPoint("P", tuple.Ints(1, 2))
	if !x.Affected("P", tuple.Ints(1, 2)) {
		t.Fatal("point should cover itself")
	}
	if x.Affected("P", tuple.Ints(1, 3)) || x.Affected("P", tuple.Ints(2, 2)) {
		t.Fatal("point covers too much")
	}
	y := NewSensitivityIndex()
	y.Add("Q", tuple.Tuple{}, tuple.Int(5), tuple.Int(9))
	x.Merge(y)
	if !x.Affected("Q", tuple.Ints(7)) || x.Affected("Q", tuple.Ints(4)) {
		t.Fatal("merged interval wrong")
	}
	if x.Len() != 2 {
		t.Fatalf("Len = %d", x.Len())
	}
	x.Reset()
	if x.Len() != 0 || x.Affected("P", tuple.Ints(1, 2)) {
		t.Fatal("reset failed")
	}
}

func TestSensitivityMultiLevelPrefix(t *testing.T) {
	// Binary join: sensitivity at depth 1 must carry the depth-0 context.
	a := binary([2]int64{1, 10}, [2]int64{2, 20})
	b := binary([2]int64{1, 10}, [2]int64{2, 30})
	idx := NewSensitivityIndex()
	j, _ := NewJoin(2, []Atom{
		{Pred: "A", Iter: a.Iterator(), Vars: []int{0, 1}},
		{Pred: "B", Iter: b.Iterator(), Vars: []int{0, 1}},
	}, idx)
	got := j.Collect()
	if len(got) != 1 || got[0][1].AsInt() != 10 {
		t.Fatalf("join = %v", got)
	}
	// Under x=2 the y-level was explored (A at 20, B at 30): changes to
	// B(2, 25) fall in a sensitive gap.
	if !idx.Affected("B", tuple.Ints(2, 25)) {
		t.Errorf("B(2,25) should be sensitive; intervals %v", idx.Intervals("B"))
	}
	// Changes under a never-explored x context (x=3 exists in neither A
	// nor B, and the x-level trace skipped it) are not sensitive.
	if idx.Affected("B", tuple.Ints(3, 5)) && idx.Affected("A", tuple.Ints(3, 5)) {
		t.Errorf("(3,5) under unexplored context sensitive in both inputs; A: %v  B: %v",
			idx.Intervals("A"), idx.Intervals("B"))
	}
}

// TestQuickIntersectionMatchesModel is a testing/quick property: the unary
// leapfrog intersection equals the set-model intersection for arbitrary
// inputs.
func TestQuickIntersectionMatchesModel(t *testing.T) {
	f := func(xs, ys, zs []int16) bool {
		mk := func(vals []int16) (relation.Relation, map[int64]bool) {
			r := relation.New(1)
			m := map[int64]bool{}
			for _, v := range vals {
				r = r.Insert(tuple.Ints(int64(v)))
				m[int64(v)] = true
			}
			return r, m
		}
		a, ma := mk(xs)
		b, mb := mk(ys)
		c, mc := mk(zs)
		got := Intersect(a.Iterator(), b.Iterator(), c.Iterator())
		want := 0
		for v := range ma {
			if mb[v] && mc[v] {
				want++
			}
		}
		if len(got) != want {
			return false
		}
		for _, v := range got {
			if !ma[v.AsInt()] || !mb[v.AsInt()] || !mc[v.AsInt()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickBinaryJoinMatchesModel checks R(a,b) ⋈ S(b,c) against nested
// loops for arbitrary inputs.
func TestQuickBinaryJoinMatchesModel(t *testing.T) {
	f := func(rs, ss [][2]uint8) bool {
		r := relation.New(2)
		s := relation.New(2)
		for _, p := range rs {
			r = r.Insert(tuple.Ints(int64(p[0]%8), int64(p[1]%8)))
		}
		for _, p := range ss {
			s = s.Insert(tuple.Ints(int64(p[0]%8), int64(p[1]%8)))
		}
		j, err := NewJoin(3, []Atom{
			{Pred: "R", Iter: r.Iterator(), Vars: []int{0, 1}},
			{Pred: "S", Iter: s.Iterator(), Vars: []int{1, 2}},
		}, nil)
		if err != nil {
			return false
		}
		got := map[[3]int64]bool{}
		j.Run(func(b tuple.Tuple) bool {
			got[[3]int64{b[0].AsInt(), b[1].AsInt(), b[2].AsInt()}] = true
			return true
		})
		want := map[[3]int64]bool{}
		for _, rt := range r.Slice() {
			for _, st := range s.Slice() {
				if tuple.Equal(rt[1], st[0]) {
					want[[3]int64{rt[0].AsInt(), rt[1].AsInt(), st[1].AsInt()}] = true
				}
			}
		}
		if len(got) != len(want) {
			return false
		}
		for k := range want {
			if !got[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRangeIterator(t *testing.T) {
	r := NewRangeIterator(tuple.Int(5), tuple.Int(10))
	r.Open()
	if r.AtEnd() || r.Key().AsInt() != 5 {
		t.Fatalf("open = %v", r.Key())
	}
	r.Seek(tuple.Int(7))
	if r.Key().AsInt() != 7 {
		t.Fatalf("seek = %v", r.Key())
	}
	r.Next()
	if r.Key().AsInt() != 8 {
		t.Fatalf("next = %v", r.Key())
	}
	r.Seek(tuple.Int(10))
	if !r.AtEnd() {
		t.Fatalf("seek to hi should end (half-open)")
	}
	r.Up()
	// Empty range.
	e := NewRangeIterator(tuple.Int(5), tuple.Int(5))
	e.Open()
	if !e.AtEnd() {
		t.Fatalf("empty range should open at end")
	}
}

func TestRangeRestrictsJoin(t *testing.T) {
	a := unary(1, 3, 5, 7, 9)
	j, err := NewJoin(1, []Atom{
		{Pred: "A", Iter: a.Iterator(), Vars: []int{0}},
		{Pred: "$range", Iter: NewRangeIterator(tuple.Int(3), tuple.Int(8)), Vars: []int{0}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := j.Collect()
	if len(got) != 3 || got[0][0].AsInt() != 3 || got[2][0].AsInt() != 7 {
		t.Fatalf("range-restricted join = %v", got)
	}
}

func TestPartitionedJoinMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	e := relation.New(2)
	for i := 0; i < 600; i++ {
		e = e.Insert(tuple.Ints(rng.Int63n(40), rng.Int63n(40)))
	}
	mkAtoms := func() []Atom {
		return []Atom{
			{Pred: "E1", Iter: e.Iterator(), Vars: []int{0, 1}},
			{Pred: "E2", Iter: e.Iterator(), Vars: []int{1, 2}},
			{Pred: "E3", Iter: e.Iterator(), Vars: []int{0, 2}},
		}
	}
	serial, err := NewJoin(3, mkAtoms(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := serial.Count()

	cuts := Quantiles(e.Sample(128), 4)
	if len(cuts) == 0 {
		t.Fatal("no quantile cuts")
	}
	got, err := PartitionedCount(3, mkAtoms, cuts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("partitioned count %d != serial %d (cuts %v)", got, want, cuts)
	}

	// Collect variant: same multiset of bindings.
	rows, err := PartitionedCollect(3, mkAtoms, cuts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != want {
		t.Fatalf("collect size %d != %d", len(rows), want)
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if seen[r.String()] {
			t.Fatalf("duplicate binding across partitions: %v", r)
		}
		seen[r.String()] = true
	}
}

func TestQuantiles(t *testing.T) {
	r := relation.New(1)
	for i := int64(0); i < 100; i++ {
		r = r.Insert(tuple.Ints(i))
	}
	cuts := Quantiles(r, 4)
	if len(cuts) != 3 {
		t.Fatalf("cuts = %v", cuts)
	}
	for i := 1; i < len(cuts); i++ {
		if !tuple.Less(cuts[i-1], cuts[i]) {
			t.Fatalf("cuts not increasing: %v", cuts)
		}
	}
	if got := Quantiles(relation.New(1), 4); got != nil {
		t.Fatalf("empty sample should yield no cuts: %v", got)
	}
}

func TestSuccessorOrdering(t *testing.T) {
	vals := []tuple.Value{
		tuple.Bool(false), tuple.Int(0), tuple.Int(41),
		tuple.Float(1.5), tuple.String("abc"), tuple.Entity(1, 2),
	}
	for _, v := range vals {
		s := tuple.Successor(v)
		if tuple.Compare(s, v) <= 0 {
			t.Errorf("Successor(%v) = %v is not greater", v, s)
		}
	}
}
