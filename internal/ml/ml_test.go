package ml

import (
	"math"
	"math/rand"
	"testing"
)

func TestLogisticSeparable(t *testing.T) {
	// y = 1 iff x > 0: perfectly separable on one feature.
	var examples []Example
	for i := -10; i <= 10; i++ {
		if i == 0 {
			continue
		}
		y := 0.0
		if i > 0 {
			y = 1
		}
		examples = append(examples, Example{Features: map[string]float64{"x": float64(i)}, Target: y})
	}
	m, err := TrainLogistic(examples, LogisticOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p := m.Predict(map[string]float64{"x": 5}); p < 0.9 {
		t.Errorf("P(y|x=5) = %v, want > 0.9", p)
	}
	if p := m.Predict(map[string]float64{"x": -5}); p > 0.1 {
		t.Errorf("P(y|x=-5) = %v, want < 0.1", p)
	}
	if m.Kind() != "logist" {
		t.Errorf("kind = %s", m.Kind())
	}
}

func TestLogisticMultiFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var examples []Example
	for i := 0; i < 400; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		y := 0.0
		if 2*a-3*b > 0 {
			y = 1
		}
		examples = append(examples, Example{Features: map[string]float64{"a": a, "b": b}, Target: y})
	}
	m, err := TrainLogistic(examples, LogisticOptions{Epochs: 800})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, ex := range examples {
		p := m.Predict(ex.Features)
		if (p > 0.5) == (ex.Target > 0.5) {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(examples)); acc < 0.9 {
		t.Errorf("training accuracy %.2f < 0.9", acc)
	}
}

func TestLogisticNoExamples(t *testing.T) {
	if _, err := TrainLogistic(nil, LogisticOptions{}); err == nil {
		t.Fatal("expected error for empty training set")
	}
}

func TestLinearExactFit(t *testing.T) {
	// y = 3x + 2z - 1 exactly.
	var examples []Example
	for x := 0.0; x < 5; x++ {
		for z := 0.0; z < 5; z++ {
			examples = append(examples, Example{
				Features: map[string]float64{"x": x, "z": z},
				Target:   3*x + 2*z - 1,
			})
		}
	}
	m, err := TrainLinear(examples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Bias+1) > 1e-6 {
		t.Errorf("bias = %v, want -1", m.Bias)
	}
	pred := m.Predict(map[string]float64{"x": 10, "z": -2})
	want := 3.0*10 + 2*(-2) - 1
	if math.Abs(pred-want) > 1e-6 {
		t.Errorf("predict = %v, want %v", pred, want)
	}
	if m.Kind() != "linear" {
		t.Errorf("kind = %s", m.Kind())
	}
}

func TestLinearNoisyFit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var examples []Example
	for i := 0; i < 300; i++ {
		x := rng.Float64() * 10
		examples = append(examples, Example{
			Features: map[string]float64{"x": x},
			Target:   2*x + 5 + rng.NormFloat64()*0.1,
		})
	}
	m, err := TrainLinear(examples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Weights[0]-2) > 0.1 || math.Abs(m.Bias-5) > 0.2 {
		t.Errorf("fit w=%v b=%v, want ≈2, ≈5", m.Weights[0], m.Bias)
	}
}

func TestLinearMissingFeaturesTreatedAsZero(t *testing.T) {
	examples := []Example{
		{Features: map[string]float64{"a": 1}, Target: 2},
		{Features: map[string]float64{"b": 1}, Target: 3},
		{Features: map[string]float64{}, Target: 0},
	}
	m, err := TrainLinear(examples)
	if err != nil {
		t.Fatal(err)
	}
	if p := m.Predict(map[string]float64{"a": 1}); math.Abs(p-2) > 1e-3 {
		t.Errorf("predict(a) = %v", p)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	m1 := &LinearModel{}
	m2 := &LogisticModel{}
	id1, id2 := r.Put(m1), r.Put(m2)
	if id1 == id2 {
		t.Fatal("duplicate handles")
	}
	if got, ok := r.Get(id1); !ok || got != Model(m1) {
		t.Fatal("lost model 1")
	}
	if got, ok := r.Get(id2); !ok || got != Model(m2) {
		t.Fatal("lost model 2")
	}
	if _, ok := r.Get(999); ok {
		t.Fatal("phantom model")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestSolveGaussSingular(t *testing.T) {
	a := [][]float64{{1, 1, 1}, {1, 1, 2}} // x + y = 1 and x + y = 2: singular
	if _, err := solveGauss(a); err == nil {
		t.Fatal("expected singular-system error")
	}
}
