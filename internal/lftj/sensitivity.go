package lftj

import (
	"fmt"
	"sort"
	"strings"

	"logicblox/internal/trie"
	"logicblox/internal/tuple"
)

// Interval is a sensitivity interval: a region of one predicate's trie in
// which an insertion or deletion could change the outcome of a join run
// (paper §3.2). Prefix fixes the keys of the trie levels above; [Lo, Hi]
// bounds the keys at the interval's level. Lo = tuple.MinValue() encodes
// −∞ and Hi = tuple.MaxValue() encodes +∞.
//
// Cols maps the interval's trie levels onto the predicate's stored
// columns: Prefix[i] constrains t[Cols[i]] and [Lo, Hi] bounds
// t[Cols[len(Prefix)]]. A nil Cols means the identity mapping — the run
// read the predicate in its natural column order. Runs over a permuted
// secondary index (paper §3.2) record non-nil Cols so that probes, which
// always present tuples in stored order, still land in the right region.
type Interval struct {
	Prefix tuple.Tuple
	Lo, Hi tuple.Value
	Cols   []int
}

// Covers reports whether a change to tuple t (of the interval's
// predicate, in stored column order) falls inside the interval: t
// matches Prefix on the interval's columns and the interval-level column
// lies in [Lo, Hi].
func (iv Interval) Covers(t tuple.Tuple) bool {
	d := len(iv.Prefix)
	if iv.Cols == nil {
		if d >= len(t) {
			return false
		}
		for i := 0; i < d; i++ {
			if !tuple.Equal(t[i], iv.Prefix[i]) {
				return false
			}
		}
		return tuple.Compare(iv.Lo, t[d]) <= 0 && tuple.Compare(t[d], iv.Hi) <= 0
	}
	if len(iv.Cols) != d+1 {
		return false
	}
	for i := 0; i < d; i++ {
		c := iv.Cols[i]
		if c >= len(t) || !tuple.Equal(t[c], iv.Prefix[i]) {
			return false
		}
	}
	rc := iv.Cols[d]
	if rc >= len(t) {
		return false
	}
	return tuple.Compare(iv.Lo, t[rc]) <= 0 && tuple.Compare(t[rc], iv.Hi) <= 0
}

func (iv Interval) String() string {
	var b strings.Builder
	b.WriteByte('[')
	if len(iv.Prefix) > 0 {
		b.WriteString(iv.Prefix.String())
		b.WriteByte(' ')
	}
	if iv.Lo.IsNull() {
		b.WriteString("-inf")
	} else {
		b.WriteString(iv.Lo.String())
	}
	b.WriteString(", ")
	if tuple.Equal(iv.Hi, tuple.MaxValue()) {
		b.WriteString("+inf")
	} else {
		b.WriteString(iv.Hi.String())
	}
	b.WriteByte(']')
	return b.String()
}

// SensitivityIndex accumulates the sensitivity intervals of join runs,
// grouped by predicate. It answers the question central to both
// incremental maintenance and transaction repair: "could this change have
// affected that computation?"
//
// Probes are served from a lazily built lookup structure: intervals are
// bucketed by (predicate, prefix), sorted by lower bound with a running
// maximum of upper bounds, so Affected is a hash lookup plus a binary
// search instead of a scan.
type SensitivityIndex struct {
	byPred map[string][]Interval
	lookup map[string]*predLookup
	dirty  bool
}

// predLookup is one predicate's probe structure: identity-order
// intervals bucketed by prefix, plus one bucket group per distinct
// permuted column signature (secondary-index runs).
type predLookup struct {
	identity map[string]*bucket // prefix string → bucket (Cols == nil)
	permuted []*permSig
}

// permSig groups the intervals recorded under one permuted column
// sequence (prefix columns + interval-level column).
type permSig struct {
	cols     []int
	byPrefix map[string]*bucket
}

// bucket holds the intervals sharing one (pred, cols, prefix), sorted by
// Lo, with maxHi[i] = max(Hi[0..i]) for O(log n) stabbing queries.
type bucket struct {
	lo    []tuple.Value
	maxHi []tuple.Value
}

// stab reports whether v falls in any of the bucket's intervals.
func (b *bucket) stab(v tuple.Value) bool {
	n := len(b.lo)
	pos := sort.Search(n, func(i int) bool { return tuple.Compare(b.lo[i], v) > 0 }) - 1
	return pos >= 0 && tuple.Compare(b.maxHi[pos], v) >= 0
}

// NewSensitivityIndex returns an empty index.
func NewSensitivityIndex() *SensitivityIndex {
	return &SensitivityIndex{byPred: make(map[string][]Interval)}
}

// Add records an interval for pred. The prefix is cloned.
func (x *SensitivityIndex) Add(pred string, prefix tuple.Tuple, lo, hi tuple.Value) {
	x.byPred[pred] = append(x.byPred[pred], Interval{Prefix: prefix.Clone(), Lo: lo, Hi: hi})
	x.dirty = true
}

// AddPoint records a single-tuple sensitivity (used for membership probes
// of negated atoms and for written keys).
func (x *SensitivityIndex) AddPoint(pred string, t tuple.Tuple) {
	if len(t) == 0 {
		x.byPred[pred] = append(x.byPred[pred], Interval{Lo: tuple.MinValue(), Hi: tuple.MaxValue()})
		x.dirty = true
		return
	}
	last := len(t) - 1
	x.byPred[pred] = append(x.byPred[pred], Interval{Prefix: t[:last].Clone(), Lo: t[last], Hi: t[last]})
	x.dirty = true
}

// Affected reports whether a change to tuple t of predicate pred falls in
// any recorded interval.
func (x *SensitivityIndex) Affected(pred string, t tuple.Tuple) bool {
	x.rebuildLookup()
	pl, ok := x.lookup[pred]
	if !ok {
		return false
	}
	// An identity interval at depth d covers t when its prefix matches
	// t[:d] and t[d] ∈ [Lo, Hi]; check every depth.
	for d := 0; d < len(t); d++ {
		if b, ok := pl.identity[tuple.Tuple(t[:d]).String()]; ok && b.stab(t[d]) {
			return true
		}
	}
	// Permuted intervals probe the columns their run actually read.
	for _, sig := range pl.permuted {
		d := len(sig.cols) - 1
		rc := sig.cols[d]
		if rc >= len(t) {
			continue
		}
		prefix := make(tuple.Tuple, d)
		valid := true
		for i, c := range sig.cols[:d] {
			if c >= len(t) {
				valid = false
				break
			}
			prefix[i] = t[c]
		}
		if !valid {
			continue
		}
		if b, ok := sig.byPrefix[prefix.String()]; ok && b.stab(t[rc]) {
			return true
		}
	}
	return false
}

// colsKey renders a column sequence as a grouping key.
func colsKey(cols []int) string {
	var sb strings.Builder
	for _, c := range cols {
		fmt.Fprintf(&sb, "%d,", c)
	}
	return sb.String()
}

// rebuildLookup (re)derives the probe structure after mutations.
func (x *SensitivityIndex) rebuildLookup() {
	if !x.dirty && x.lookup != nil {
		return
	}
	x.lookup = make(map[string]*predLookup, len(x.byPred))
	for pred, ivs := range x.byPred {
		pl := &predLookup{identity: map[string]*bucket{}}
		byPrefix := map[string][]Interval{}
		bySig := map[string][]Interval{}
		sigCols := map[string][]int{}
		for _, iv := range ivs {
			if iv.Cols == nil {
				key := iv.Prefix.String()
				byPrefix[key] = append(byPrefix[key], iv)
				continue
			}
			key := colsKey(iv.Cols)
			bySig[key] = append(bySig[key], iv)
			sigCols[key] = iv.Cols
		}
		for key, group := range byPrefix {
			pl.identity[key] = newBucket(group)
		}
		for key, group := range bySig {
			sig := &permSig{cols: sigCols[key], byPrefix: map[string]*bucket{}}
			grouped := map[string][]Interval{}
			for _, iv := range group {
				grouped[iv.Prefix.String()] = append(grouped[iv.Prefix.String()], iv)
			}
			for pk, g := range grouped {
				sig.byPrefix[pk] = newBucket(g)
			}
			pl.permuted = append(pl.permuted, sig)
		}
		x.lookup[pred] = pl
	}
	x.dirty = false
}

// newBucket builds the stabbing structure over one interval group.
func newBucket(group []Interval) *bucket {
	sort.Slice(group, func(i, j int) bool { return tuple.Less(group[i].Lo, group[j].Lo) })
	b := &bucket{lo: make([]tuple.Value, len(group)), maxHi: make([]tuple.Value, len(group))}
	for i, iv := range group {
		b.lo[i] = iv.Lo
		b.maxHi[i] = iv.Hi
		if i > 0 && tuple.Less(b.maxHi[i], b.maxHi[i-1]) {
			b.maxHi[i] = b.maxHi[i-1]
		}
	}
	return b
}

// AffectedAny reports whether any of the changes intersects the index.
func (x *SensitivityIndex) AffectedAny(pred string, ts []tuple.Tuple) bool {
	for _, t := range ts {
		if x.Affected(pred, t) {
			return true
		}
	}
	return false
}

// Merge folds the intervals of o into x.
func (x *SensitivityIndex) Merge(o *SensitivityIndex) {
	for pred, ivs := range o.byPred {
		x.byPred[pred] = append(x.byPred[pred], ivs...)
	}
	x.dirty = true
}

// Len returns the total number of recorded intervals.
func (x *SensitivityIndex) Len() int {
	n := 0
	for _, ivs := range x.byPred {
		n += len(ivs)
	}
	return n
}

// Reset drops all recorded intervals.
func (x *SensitivityIndex) Reset() {
	x.byPred = make(map[string][]Interval)
	x.lookup = nil
	x.dirty = false
}

// Intervals returns the intervals recorded for pred, sorted for stable
// presentation (by prefix, then lower bound).
func (x *SensitivityIndex) Intervals(pred string) []Interval {
	ivs := append([]Interval(nil), x.byPred[pred]...)
	sort.Slice(ivs, func(i, j int) bool {
		if c := ivs[i].Prefix.Compare(ivs[j].Prefix); c != 0 {
			return c < 0
		}
		return tuple.Less(ivs[i].Lo, ivs[j].Lo)
	})
	return ivs
}

// Counts returns the number of recorded intervals per predicate — the
// per-evaluation read-set summary that transaction repair (paper §3.4)
// reports alongside its intersection outcome.
func (x *SensitivityIndex) Counts() map[string]int {
	out := make(map[string]int, len(x.byPred))
	for p, ivs := range x.byPred {
		out[p] = len(ivs)
	}
	return out
}

// Preds returns the predicates with recorded intervals, sorted.
func (x *SensitivityIndex) Preds() []string {
	var out []string
	for p := range x.byPred {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// recording adapts join-run iterator movements into sensitivity-index
// entries. It maps each atom's iterator back to the atom so the interval's
// prefix (the atom's ancestor keys) can be read from the current binding.
type recording struct {
	j    *Join
	idx  *SensitivityIndex
	atom map[trie.Iterator]*Atom
}

func newRecording(j *Join, idx *SensitivityIndex) *recording {
	r := &recording{j: j, idx: idx, atom: make(map[trie.Iterator]*Atom, len(j.atoms))}
	for i := range j.atoms {
		r.atom[j.atoms[i].Iter] = &j.atoms[i]
	}
	return r
}

// record notes that iterator it moved within [lo, hi] (hi open-ended when
// openEnded) at its current depth, under the atom's current ancestor keys.
// The nil *recording is a valid no-op, so callers on paths where no
// recorder is attached pay a pointer test instead of building the
// interval (the prefix allocation below must never happen without a
// recorder).
func (r *recording) record(it trie.Iterator, lo, hi tuple.Value, openEnded bool) {
	if r == nil {
		return
	}
	a, ok := r.atom[it]
	if !ok {
		return
	}
	d := it.Depth()
	if d < 0 {
		return
	}
	var prefix tuple.Tuple
	if d > 0 {
		prefix = make(tuple.Tuple, d)
		for i := 0; i < d; i++ {
			prefix[i] = r.j.binding[a.Vars[i]]
		}
	}
	if openEnded {
		hi = tuple.MaxValue()
	}
	// For an atom bound through a permuted secondary index, the prefix
	// values above are in plan-column order; carry the stored-column
	// mapping so probes (which see stored-order tuples) can still match.
	var cols []int
	if a.Cols != nil {
		cols = append([]int(nil), a.Cols[:d+1]...)
	}
	r.idx.byPred[a.Pred] = append(r.idx.byPred[a.Pred], Interval{Prefix: prefix, Lo: lo, Hi: hi, Cols: cols})
	r.idx.dirty = true
	if r.j.m != nil {
		r.j.m.SensRecords++
	}
}
