// Package logiql is the warning-tier checker for LogiQL programs: it
// flags program smells — rules that can never fire, heads nobody reads,
// variables used once, duplicate or subsumed rules, constraints whose
// body is trivially unsatisfiable — without rejecting the program. The
// compiler stays the arbiter of hard errors; these checks surface the
// mistakes that type-check fine and then silently do nothing, which in a
// declarative language is the expensive kind of bug (paper §2.2: the
// program is the spec, so a clause that cannot contribute is almost
// always a typo). Surfaced through `lb :check`, `lb-lint -logiql`, and
// the server's POST /check endpoint.
package logiql

import (
	"fmt"
	"sort"
	"strings"

	"logicblox/internal/ast"
	"logicblox/internal/tuple"
)

// Warning checks.
const (
	CheckDeadRule   = "dead-rule"
	CheckUnconsumed = "unconsumed"
	CheckSingleton  = "singleton-var"
	CheckDuplicate  = "duplicate-rule"
	CheckSubsumed   = "subsumed-rule"
	CheckUnsat      = "unsat-constraint"
)

// Warning is one advisory finding about a clause. Clause carries the
// printed form of the offending clause (the AST carries no source
// positions; the printed clause is the stable way to point at it).
type Warning struct {
	Check   string `json:"check"`
	Clause  string `json:"clause"`
	Message string `json:"message"`
}

func (w Warning) String() string {
	return w.Check + ": " + w.Message + " [" + w.Clause + "]"
}

// CheckProgram runs every warning-tier check over the program — which
// may be a single block or the merge of all installed blocks plus a
// candidate (see core.Workspace.CheckProgram) — and returns the
// warnings in a deterministic order.
func CheckProgram(p *ast.Program) []Warning {
	var warns []Warning
	warns = append(warns, checkDeadRules(p)...)
	warns = append(warns, checkUnconsumed(p)...)
	warns = append(warns, checkSingletons(p)...)
	warns = append(warns, checkDuplicates(p)...)
	warns = append(warns, checkUnsatConstraints(p)...)
	sort.SliceStable(warns, func(i, j int) bool {
		if warns[i].Check != warns[j].Check {
			return warns[i].Check < warns[j].Check
		}
		return warns[i].Clause < warns[j].Clause
	})
	return warns
}

// atomPreds collects the predicate names an atom mentions: its own and
// those of functional applications nested in its terms.
func atomPreds(a *ast.Atom, out map[string]bool) {
	out[a.Pred] = true
	for _, t := range a.AllTerms() {
		termPreds(t, out)
	}
}

func termPreds(t ast.Term, out map[string]bool) {
	switch term := t.(type) {
	case ast.FuncApp:
		out[term.Pred] = true
		for _, arg := range term.Args {
			termPreds(arg, out)
		}
	case ast.Arith:
		termPreds(term.L, out)
		termPreds(term.R, out)
	}
}

// positiveBodyPreds returns the predicates a rule's positive body
// literals (and functional terms anywhere in the rule) depend on: the
// predicates that must be derivable for the rule to ever fire. Negated
// atoms do not gate firing — negation succeeds on empty predicates.
func positiveBodyPreds(r *ast.Rule) map[string]bool {
	deps := map[string]bool{}
	for _, l := range r.Body {
		switch {
		case l.Cmp != nil:
			termPreds(l.Cmp.L, deps)
			termPreds(l.Cmp.R, deps)
		case l.Negated:
			for _, t := range l.Atom.AllTerms() {
				termPreds(t, deps)
			}
		default:
			atomPreds(l.Atom, deps)
		}
	}
	for _, h := range r.Heads {
		for _, t := range h.AllTerms() {
			termPreds(t, deps)
		}
	}
	return deps
}

// checkDeadRules runs a derivability fixpoint: predicates with no rules
// are assumed EDB (stored, possibly populated), facts are immediately
// derivable, and a rule fires once all its positive dependencies are
// derivable. Rules that never fire — classically, recursion without a
// base case — are dead.
func checkDeadRules(p *ast.Program) []Warning {
	rules := p.Rules()
	headed := map[string]bool{} // predicates some rule derives
	for _, r := range rules {
		for _, h := range r.Heads {
			headed[h.Pred] = true
		}
	}
	derivable := map[string]bool{}
	fired := make([]bool, len(rules))
	for changed := true; changed; {
		changed = false
		for i, r := range rules {
			if fired[i] {
				continue
			}
			ok := true
			for dep := range positiveBodyPreds(r) {
				if headed[dep] && !derivable[dep] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			fired[i] = true
			changed = true
			for _, h := range r.Heads {
				derivable[h.Pred] = true
			}
		}
	}
	var warns []Warning
	for i, r := range rules {
		if fired[i] {
			continue
		}
		warns = append(warns, Warning{
			Check:  CheckDeadRule,
			Clause: r.String(),
			Message: "rule can never fire: no derivation reaches its positive body predicates" +
				" (recursion without a base case, or a dependency no rule or stored predicate supplies)",
		})
	}
	return warns
}

// consumers returns every predicate referenced anywhere a derived tuple
// could be read: rule bodies and functional terms, constraint sides, and
// directive arguments.
func consumers(p *ast.Program) map[string]bool {
	used := map[string]bool{}
	for _, c := range p.Clauses {
		switch cl := c.(type) {
		case *ast.Rule:
			for dep := range positiveBodyPreds(cl) {
				used[dep] = true
			}
			for _, l := range cl.Body {
				if l.Negated && l.Atom != nil {
					used[l.Atom.Pred] = true
				}
			}
		case *ast.Constraint:
			for _, side := range [][]*ast.Literal{cl.Body, cl.Head} {
				for _, l := range side {
					if l.Atom != nil {
						atomPreds(l.Atom, used)
					} else if l.Cmp != nil {
						termPreds(l.Cmp.L, used)
						termPreds(l.Cmp.R, used)
					}
				}
			}
		case *ast.Directive:
			for _, a := range cl.Args {
				used[a] = true
			}
		}
	}
	return used
}

// checkUnconsumed flags derived predicates nobody reads: the head
// predicate of a rule that no other clause's body, constraint, or
// directive mentions. References from a rule's own body (recursion)
// don't count as consumption — a self-feeding predicate nobody reads is
// still invisible. One warning per predicate, attached to the first
// rule deriving it.
func checkUnconsumed(p *ast.Program) []Warning {
	// usedOutside[pred]: referenced by a clause that does not derive pred.
	usedOutside := map[string]bool{}
	for _, c := range p.Clauses {
		refs := map[string]bool{}
		derives := map[string]bool{}
		switch cl := c.(type) {
		case *ast.Rule:
			for dep := range positiveBodyPreds(cl) {
				refs[dep] = true
			}
			for _, l := range cl.Body {
				if l.Negated && l.Atom != nil {
					refs[l.Atom.Pred] = true
				}
			}
			for _, h := range cl.Heads {
				derives[h.Pred] = true
			}
		case *ast.Constraint:
			for _, side := range [][]*ast.Literal{cl.Body, cl.Head} {
				for _, l := range side {
					if l.Atom != nil {
						atomPreds(l.Atom, refs)
					} else if l.Cmp != nil {
						termPreds(l.Cmp.L, refs)
						termPreds(l.Cmp.R, refs)
					}
				}
			}
		case *ast.Directive:
			for _, a := range cl.Args {
				refs[a] = true
			}
		}
		for pred := range refs {
			if !derives[pred] {
				usedOutside[pred] = true
			}
		}
	}
	seen := map[string]bool{}
	var warns []Warning
	for _, r := range p.Rules() {
		for _, h := range r.Heads {
			if usedOutside[h.Pred] || seen[h.Pred] || h.Pred == "_" {
				continue
			}
			seen[h.Pred] = true
			warns = append(warns, Warning{
				Check:  CheckUnconsumed,
				Clause: r.String(),
				Message: fmt.Sprintf("derived predicate %q is never read by any rule body, constraint, or directive",
					h.Pred),
			})
		}
	}
	return warns
}

// termVars counts variable occurrences in a term.
func termVars(t ast.Term, count map[string]int) {
	switch term := t.(type) {
	case ast.Var:
		count[term.Name]++
	case ast.Arith:
		termVars(term.L, count)
		termVars(term.R, count)
	case ast.FuncApp:
		for _, arg := range term.Args {
			termVars(arg, count)
		}
	}
}

// checkSingletons flags variables that occur exactly once in a rule —
// in LogiQL a variable used once carries no join constraint, so it is
// either a typo for another variable or should be the wildcard `_`.
// Constraints are exempt: type declarations like `p(x) -> int(x).`
// routinely name variables once per side.
func checkSingletons(p *ast.Program) []Warning {
	var warns []Warning
	for _, r := range p.Rules() {
		count := map[string]int{}
		for _, h := range r.Heads {
			for _, t := range h.AllTerms() {
				termVars(t, count)
			}
		}
		for _, l := range r.Body {
			if l.Cmp != nil {
				termVars(l.Cmp.L, count)
				termVars(l.Cmp.R, count)
			} else {
				for _, t := range l.Atom.AllTerms() {
					termVars(t, count)
				}
			}
		}
		if r.Agg != nil {
			count[r.Agg.Result]++
			if r.Agg.Arg != "" {
				count[r.Agg.Arg]++
			}
		}
		if r.Pred != nil {
			count[r.Pred.Result]++
			count[r.Pred.Value]++
			count[r.Pred.Feature]++
		}
		var singles []string
		for v, n := range count {
			if n == 1 {
				singles = append(singles, v)
			}
		}
		sort.Strings(singles)
		for _, v := range singles {
			warns = append(warns, Warning{
				Check:  CheckSingleton,
				Clause: r.String(),
				Message: fmt.Sprintf("variable %q occurs only once; a join variable used once is usually a typo (use _ if the position is deliberately unconstrained)",
					v),
			})
		}
	}
	return warns
}

// checkDuplicates flags syntactically identical rules and rules whose
// body is a strict superset of another rule with the same heads: the
// narrower rule can only derive tuples the wider one already derives.
// The comparison is syntactic (printed form), deliberately: it catches
// copy-paste, not clever renamings.
func checkDuplicates(p *ast.Program) []Warning {
	rules := p.Rules()
	type ruleKey struct {
		heads string
		body  map[string]bool
		str   string
		extra bool // aggregation/predict rules are exempt from subsumption
	}
	keys := make([]ruleKey, len(rules))
	for i, r := range rules {
		heads := make([]string, len(r.Heads))
		for j, h := range r.Heads {
			heads[j] = h.String()
		}
		body := map[string]bool{}
		for _, l := range r.Body {
			body[l.String()] = true
		}
		keys[i] = ruleKey{
			heads: strings.Join(heads, ", "),
			body:  body,
			str:   r.String(),
			extra: r.Agg != nil || r.Pred != nil,
		}
	}
	var warns []Warning
	reported := map[int]bool{}
	for i := range keys {
		for j := range keys {
			if i == j || reported[i] {
				continue
			}
			if keys[i].heads != keys[j].heads {
				continue
			}
			if keys[i].str == keys[j].str {
				if i > j { // report the later copy once
					reported[i] = true
					warns = append(warns, Warning{
						Check:   CheckDuplicate,
						Clause:  keys[i].str,
						Message: "rule is an exact duplicate of an earlier rule",
					})
				}
				continue
			}
			if keys[i].extra || keys[j].extra {
				continue
			}
			if len(keys[j].body) < len(keys[i].body) && subset(keys[j].body, keys[i].body) {
				reported[i] = true
				warns = append(warns, Warning{
					Check:  CheckSubsumed,
					Clause: keys[i].str,
					Message: fmt.Sprintf("rule is subsumed by the more general rule [%s]: every tuple it derives is already derived",
						keys[j].str),
				})
			}
		}
	}
	return warns
}

func subset(small, big map[string]bool) bool {
	for k := range small {
		if !big[k] {
			return false
		}
	}
	return true
}

// checkUnsatConstraints flags constraints whose body can never hold: a
// comparison false for every binding (same term on both sides of a
// strict operator, or a constant comparison that evaluates false), or
// an atom required both positively and negatively. Such a constraint is
// vacuously satisfied — it guards nothing, which is never what its
// author meant.
func checkUnsatConstraints(p *ast.Program) []Warning {
	var warns []Warning
	for _, c := range p.Constraints() {
		if reason := unsatReason(c.Body); reason != "" {
			warns = append(warns, Warning{
				Check:   CheckUnsat,
				Clause:  c.String(),
				Message: "constraint body is unsatisfiable (" + reason + "), so the constraint is vacuously satisfied and guards nothing",
			})
		}
	}
	return warns
}

func unsatReason(body []*ast.Literal) string {
	pos := map[string]bool{}
	neg := map[string]bool{}
	for _, l := range body {
		if l.Cmp != nil {
			if r := unsatCmp(l.Cmp); r != "" {
				return r
			}
			continue
		}
		if l.Negated {
			neg[l.Atom.String()] = true
		} else {
			pos[l.Atom.String()] = true
		}
	}
	for s := range pos {
		if neg[s] {
			return fmt.Sprintf("requires both %s and !%s", s, s)
		}
	}
	return ""
}

func unsatCmp(cmp *ast.Comparison) string {
	if cmp.L.String() == cmp.R.String() {
		switch cmp.Op {
		case ast.OpNe, ast.OpLt, ast.OpGt:
			return fmt.Sprintf("%s is false for every binding", cmp)
		}
		return ""
	}
	lc, lok := cmp.L.(ast.Const)
	rc, rok := cmp.R.(ast.Const)
	if !lok || !rok {
		return ""
	}
	c := tuple.Compare(lc.Val, rc.Val)
	holds := false
	switch cmp.Op {
	case ast.OpEq:
		holds = c == 0
	case ast.OpNe:
		holds = c != 0
	case ast.OpLt:
		holds = c < 0
	case ast.OpLe:
		holds = c <= 0
	case ast.OpGt:
		holds = c > 0
	case ast.OpGe:
		holds = c >= 0
	}
	if !holds {
		return fmt.Sprintf("constant comparison %s is false", cmp)
	}
	return ""
}
