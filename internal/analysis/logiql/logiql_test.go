package logiql

import (
	"strings"
	"testing"

	"logicblox/internal/parser"
)

func mustParse(t *testing.T, src string) []Warning {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	return CheckProgram(prog)
}

// wantWarning asserts at least one warning of the given check mentions
// substr in its message or clause.
func wantWarning(t *testing.T, warns []Warning, check, substr string) {
	t.Helper()
	for _, w := range warns {
		if w.Check == check && (strings.Contains(w.Message, substr) || strings.Contains(w.Clause, substr)) {
			return
		}
	}
	t.Errorf("no %s warning mentioning %q in %v", check, substr, warns)
}

func wantNone(t *testing.T, warns []Warning, check string) {
	t.Helper()
	for _, w := range warns {
		if w.Check == check {
			t.Errorf("unexpected %s warning: %s", check, w)
		}
	}
}

func TestCleanProgramHasNoWarnings(t *testing.T) {
	warns := mustParse(t, `
		margin[sku] = m <- revenue[sku] = r, cost[sku] = c, m = r - c.
		flagged(sku) <- margin[sku] = m, m < 0.0.
		report(sku) <- flagged(sku).
		report(sku) -> sku(sku).
	`)
	if len(warns) != 0 {
		t.Fatalf("clean program produced warnings: %v", warns)
	}
}

func TestDeadRuleRecursionWithoutBase(t *testing.T) {
	warns := mustParse(t, `
		reach(x, y) <- reach(x, y), edge(x, y).
		out(x) <- reach(x, x).
	`)
	wantWarning(t, warns, CheckDeadRule, "reach")
	// out depends on reach, which never derives: also dead.
	if n := countCheck(warns, CheckDeadRule); n != 2 {
		t.Fatalf("got %d dead-rule warnings, want 2: %v", n, warns)
	}
}

func TestDeadRuleBaseCaseRevives(t *testing.T) {
	warns := mustParse(t, `
		reach(x, y) <- edge(x, y).
		reach(x, y) <- reach(x, z), edge(z, y).
		out(x) <- reach(x, x).
	`)
	wantNone(t, warns, CheckDeadRule)
}

func TestUnconsumedHead(t *testing.T) {
	warns := mustParse(t, `
		audit(sku) <- sales(sku).
	`)
	wantWarning(t, warns, CheckUnconsumed, "audit")
}

func TestSelfRecursionIsNotConsumption(t *testing.T) {
	warns := mustParse(t, `
		chain(x, y) <- link(x, y).
		chain(x, y) <- chain(x, z), link(z, y).
	`)
	wantWarning(t, warns, CheckUnconsumed, "chain")
}

func TestConstraintConsumes(t *testing.T) {
	warns := mustParse(t, `
		audit(sku) <- sales(sku).
		audit(sku) -> sku(sku).
	`)
	wantNone(t, warns, CheckUnconsumed)
}

func TestDirectiveConsumes(t *testing.T) {
	warns := mustParse(t, "stock(sku) <- sales(sku).\nlang:solve:variable(`stock).")
	wantNone(t, warns, CheckUnconsumed)
}

func TestSingletonInBody(t *testing.T) {
	warns := mustParse(t, `
		big(sku) <- sales(sku, week), sku != "x".
		sink(s) <- big(s).
	`)
	wantWarning(t, warns, CheckSingleton, `"week"`)
}

func TestSingletonInHeadVsBody(t *testing.T) {
	// `total` appears only in the head, `units` only in the body: both
	// are singletons even though they sit on opposite sides.
	warns := mustParse(t, `
		out[sku] = total <- sales(sku, units), sku != "x".
		sink(s) <- out[s] = v, v > 0.
	`)
	wantWarning(t, warns, CheckSingleton, `"total"`)
	if n := countCheck(warns, CheckSingleton); n != 2 {
		t.Fatalf("got %d singleton warnings, want 2 (head + body): %v", n, warns)
	}
}

func TestSharedVariableIsNotSingleton(t *testing.T) {
	warns := mustParse(t, `
		pair(x, y) <- left(x), right(y), x != y.
		sink(x) <- pair(x, x).
	`)
	wantNone(t, warns, CheckSingleton)
}

func TestWildcardIsNotSingleton(t *testing.T) {
	warns := mustParse(t, `
		seen(sku) <- sales(sku, _).
		sink(s) <- seen(s).
	`)
	wantNone(t, warns, CheckSingleton)
}

func TestConstraintsExemptFromSingleton(t *testing.T) {
	warns := mustParse(t, `
		sales(sku, units) -> sku(sku), int(units).
	`)
	wantNone(t, warns, CheckSingleton)
}

func TestAggregationVariablesCounted(t *testing.T) {
	// z appears in the body atom and as the aggregation argument; u in
	// the head and as the result: no singletons.
	warns := mustParse(t, `
		total[sku] = u <- agg<<u = total(z)>> sales(sku, z).
		sink(s) <- total[s] = v, v > 0.
	`)
	wantNone(t, warns, CheckSingleton)
}

func TestNegationThroughAggregationStaysLive(t *testing.T) {
	// The aggregation feeds from a predicate that is only negated
	// elsewhere; negation must not make anything dead, and the agg
	// variables must not trip the singleton check.
	warns := mustParse(t, `
		eligible(sku) <- sales(sku, _), !blocked(sku).
		blocked(sku) <- recall(sku).
		count_eligible[] = n <- agg<<n = count()>> eligible(_).
		sink(v) <- count_eligible[] = v.
	`)
	wantNone(t, warns, CheckDeadRule)
	wantNone(t, warns, CheckSingleton)
}

func TestDuplicateRule(t *testing.T) {
	warns := mustParse(t, `
		out(x) <- base(x).
		out(x) <- base(x).
		sink(x) <- out(x).
	`)
	wantWarning(t, warns, CheckDuplicate, "exact duplicate")
}

func TestSubsumedRule(t *testing.T) {
	warns := mustParse(t, `
		out(x) <- base(x).
		out(x) <- base(x), extra(x).
		sink(x) <- out(x).
	`)
	wantWarning(t, warns, CheckSubsumed, "more general rule")
}

func TestDifferentHeadsNotSubsumed(t *testing.T) {
	warns := mustParse(t, `
		a(x) <- base(x).
		b(x) <- base(x), extra(x).
		sink(x) <- a(x), b(x).
	`)
	wantNone(t, warns, CheckSubsumed)
	wantNone(t, warns, CheckDuplicate)
}

func TestUnsatConstraintContradictoryAtom(t *testing.T) {
	warns := mustParse(t, `
		sales(sku, units), !sales(sku, units) -> int(units).
	`)
	wantWarning(t, warns, CheckUnsat, "requires both")
}

func TestUnsatConstraintFalseConstant(t *testing.T) {
	warns := mustParse(t, `
		sales(sku, units), 1 = 2 -> int(units).
	`)
	wantWarning(t, warns, CheckUnsat, "constant comparison")
}

func TestUnsatConstraintSelfStrictCompare(t *testing.T) {
	warns := mustParse(t, `
		sales(sku, units), units < units -> int(units).
	`)
	wantWarning(t, warns, CheckUnsat, "false for every binding")
}

func TestSatisfiableConstraintNotFlagged(t *testing.T) {
	warns := mustParse(t, `
		sales(sku, units), units > 0 -> int(units).
	`)
	wantNone(t, warns, CheckUnsat)
}

func countCheck(warns []Warning, check string) int {
	n := 0
	for _, w := range warns {
		if w.Check == check {
			n++
		}
	}
	return n
}
