// Package treap is an immutable-analyzer fixture: its name matches the
// protected package, so mutations of node/Tree fields outside the mk
// constructor must be flagged.
package treap

type node struct {
	key, val    string
	prio        uint64
	size        int
	left, right *node
}

// Tree is the persistent handle.
type Tree struct {
	ops  int
	root *node
}

// mk is the allow-listed constructor: field writes here are legal.
func mk(left, right *node, key, val string) *node {
	n := &node{key: key, val: val, left: left, right: right}
	n.size = 1
	if left != nil {
		n.size += left.size
	}
	if right != nil {
		n.size += right.size
	}
	return n
}

func rotate(n *node) *node {
	n.left = n.right // want: outside its constructors
	n.size++         // want: outside its constructors
	return n
}

func bump(t *Tree) {
	t.ops = t.ops + 1 // want: outside its constructors
}

// fresh builds values through composite literals: always legal.
func fresh(key, val string) Tree {
	root := mk(nil, nil, key, val)
	return Tree{ops: 1, root: root}
}

// walk only reads fields and reassigns plain locals: legal.
func walk(t Tree) int {
	n := 0
	for cur := t.root; cur != nil; cur = cur.left {
		n++
	}
	return n
}
