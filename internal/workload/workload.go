// Package workload generates deterministic synthetic retail data shaped
// like the paper's motivating application (§2.1): products, stores,
// weekly sales with promotion effects, and feature vectors for the
// predictive-analytics experiments. Scales are parameterized so the
// benchmark harness can sweep sizes.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// Retail bundles the generated relations.
type Retail struct {
	Products      relation.Relation // Product(p)
	Stores        relation.Relation // Store(s)
	Sales         relation.Relation // sales[p, s, wk] = units
	Promo         relation.Relation // promo(p, wk)
	SellingPrice  relation.Relation // sellingPrice[p] = price
	BuyingPrice   relation.Relation // buyingPrice[p] = cost
	SpacePerProd  relation.Relation // spacePerProd[p] = space
	ProfitPerProd relation.Relation // profitPerProd[p] = profit
	MinStock      relation.Relation // minStock[p] = v
	MaxStock      relation.Relation // maxStock[p] = v
}

// Config sizes the generated dataset.
type Config struct {
	Products int
	Stores   int
	Weeks    int
	Seed     int64
}

// Generate builds a deterministic retail dataset: sales follow a
// per-product base rate with store multipliers and a promotion uplift.
func Generate(cfg Config) *Retail {
	rng := rand.New(rand.NewSource(cfg.Seed))
	r := &Retail{
		Products:      relation.New(1),
		Stores:        relation.New(1),
		Sales:         relation.New(4),
		Promo:         relation.New(2),
		SellingPrice:  relation.New(2),
		BuyingPrice:   relation.New(2),
		SpacePerProd:  relation.New(2),
		ProfitPerProd: relation.New(2),
		MinStock:      relation.New(2),
		MaxStock:      relation.New(2),
	}
	for p := 0; p < cfg.Products; p++ {
		name := ProductName(p)
		pv := tuple.String(name)
		r.Products = r.Products.Insert(tuple.Tuple{pv})
		sell := 5 + rng.Float64()*20
		buy := sell * (0.5 + rng.Float64()*0.3)
		r.SellingPrice = r.SellingPrice.Insert(tuple.Tuple{pv, tuple.Float(round2(sell))})
		r.BuyingPrice = r.BuyingPrice.Insert(tuple.Tuple{pv, tuple.Float(round2(buy))})
		r.SpacePerProd = r.SpacePerProd.Insert(tuple.Tuple{pv, tuple.Float(round2(0.5 + rng.Float64()*2))})
		r.ProfitPerProd = r.ProfitPerProd.Insert(tuple.Tuple{pv, tuple.Float(round2(sell - buy))})
		r.MinStock = r.MinStock.Insert(tuple.Tuple{pv, tuple.Float(0)})
		r.MaxStock = r.MaxStock.Insert(tuple.Tuple{pv, tuple.Float(float64(20 + rng.Intn(80)))})
	}
	for s := 0; s < cfg.Stores; s++ {
		r.Stores = r.Stores.Insert(tuple.Strings(StoreName(s)))
	}
	for p := 0; p < cfg.Products; p++ {
		base := 10 + rng.Float64()*50
		pv := tuple.String(ProductName(p))
		for wk := 0; wk < cfg.Weeks; wk++ {
			promoted := rng.Float64() < 0.15
			if promoted {
				r.Promo = r.Promo.Insert(tuple.Tuple{pv, tuple.String(WeekName(wk))})
			}
			for s := 0; s < cfg.Stores; s++ {
				mult := 0.5 + float64(s%5)*0.25
				units := base * mult * (0.8 + rng.Float64()*0.4)
				if promoted {
					units *= 1.8
				}
				r.Sales = r.Sales.Insert(tuple.Tuple{
					pv, tuple.String(StoreName(s)), tuple.String(WeekName(wk)),
					tuple.Int(int64(units)),
				})
			}
		}
	}
	return r
}

// ProductName renders a product identifier.
func ProductName(i int) string { return fmt.Sprintf("sku%04d", i) }

// StoreName renders a store identifier.
func StoreName(i int) string { return fmt.Sprintf("store%03d", i) }

// WeekName renders a week identifier.
func WeekName(i int) string { return fmt.Sprintf("2015-W%02d", i) }

// Relations returns the dataset keyed by the predicate names used in the
// examples and benchmarks.
func (r *Retail) Relations() map[string]relation.Relation {
	return map[string]relation.Relation{
		"Product":       r.Products,
		"Store":         r.Stores,
		"sales":         r.Sales,
		"promo":         r.Promo,
		"sellingPrice":  r.SellingPrice,
		"buyingPrice":   r.BuyingPrice,
		"spacePerProd":  r.SpacePerProd,
		"profitPerProd": r.ProfitPerProd,
		"minStock":      r.MinStock,
		"maxStock":      r.MaxStock,
	}
}

// ClassificationSet generates a labeled, separable-with-noise dataset for
// the predict-rule experiments: Buy[store, customer] = 0/1 driven by two
// numeric features.
func ClassificationSet(stores, customers int, noise float64, seed int64) (buy, feature relation.Relation) {
	rng := rand.New(rand.NewSource(seed))
	buy = relation.New(3)     // Buy[store, customer] = label
	feature = relation.New(3) // Feature[store, name] = value
	for s := 0; s < stores; s++ {
		sv := tuple.String(StoreName(s))
		f1 := rng.Float64()*4 - 2
		f2 := rng.Float64()*4 - 2
		feature = feature.Insert(tuple.Tuple{sv, tuple.String("footfall"), tuple.Float(f1)})
		feature = feature.Insert(tuple.Tuple{sv, tuple.String("income"), tuple.Float(f2)})
		prob := 1 / (1 + math.Exp(-(2*f1 - f2)))
		for c := 0; c < customers; c++ {
			label := 0.0
			if rng.Float64() < prob*(1-noise)+noise/2 {
				label = 1
			}
			buy = buy.Insert(tuple.Tuple{sv, tuple.Int(int64(c)), tuple.Float(label)})
		}
	}
	return buy, feature
}

func round2(x float64) float64 { return float64(int(x*100)) / 100 }
