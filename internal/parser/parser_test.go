package parser

import (
	"strings"
	"testing"

	"logicblox/internal/ast"
	"logicblox/internal/tuple"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q) failed: %v", src, err)
	}
	return p
}

func TestParseBasicRule(t *testing.T) {
	p := mustParse(t, `profit[sku] = z <- sellingPrice[sku] = x, buyingPrice[sku] = y, z = x - y.`)
	rules := p.Rules()
	if len(rules) != 1 {
		t.Fatalf("rules = %d", len(rules))
	}
	r := rules[0]
	if len(r.Heads) != 1 || r.Heads[0].Pred != "profit" || !r.Heads[0].Functional() {
		t.Fatalf("head = %v", r.Heads)
	}
	if len(r.Body) != 3 {
		t.Fatalf("body = %v", r.Body)
	}
	if r.Body[2].Cmp == nil || r.Body[2].Cmp.Op != ast.OpEq {
		t.Fatalf("third literal should be z = x - y, got %v", r.Body[2])
	}
}

func TestParseAbbreviatedFunctionalSyntax(t *testing.T) {
	p := mustParse(t, `profit[sku] = sellingPrice[sku] - buyingPrice[sku] <- Product(sku).`)
	r := p.Rules()[0]
	v, ok := r.Heads[0].Value.(ast.Arith)
	if !ok {
		t.Fatalf("head value should be arithmetic, got %T", r.Heads[0].Value)
	}
	if _, ok := v.L.(ast.FuncApp); !ok {
		t.Fatalf("left of arith should be functional application, got %T", v.L)
	}
}

func TestParseAggregationRule(t *testing.T) {
	p := mustParse(t, `
		totalShelf[] = u <- agg<<u = sum(z)>> Stock[p] = x, spacePerProd[p] = y, z = x * y.`)
	r := p.Rules()[0]
	if r.Agg == nil || r.Agg.Func != "sum" || r.Agg.Result != "u" || r.Agg.Arg != "z" {
		t.Fatalf("agg = %+v", r.Agg)
	}
	if len(r.Heads[0].Args) != 0 || r.Heads[0].Value == nil {
		t.Fatalf("nullary functional head expected, got %v", r.Heads[0])
	}
}

func TestParseCountAggregation(t *testing.T) {
	p := mustParse(t, `n[] = c <- agg<<c = count()>> Product(p).`)
	if p.Rules()[0].Agg.Func != "count" || p.Rules()[0].Agg.Arg != "" {
		t.Fatalf("agg = %+v", p.Rules()[0].Agg)
	}
}

func TestParseConstraints(t *testing.T) {
	p := mustParse(t, `
		spacePerProd[p] = v -> Product(p), float(v).
		Product(p) -> Stock[p] = _.
		totalShelf[] = u, maxShelf[] = v -> u <= v.
		Product(p) -> Stock[p] >= minStock[p].`)
	ks := p.Constraints()
	if len(ks) != 4 {
		t.Fatalf("constraints = %d", len(ks))
	}
	// Second constraint head: functional atom with wildcard value.
	if ks[1].Head[0].Atom == nil {
		t.Fatalf("expected atom head, got %v", ks[1].Head[0])
	}
	if _, ok := ks[1].Head[0].Atom.Value.(ast.Wildcard); !ok {
		t.Fatalf("expected wildcard value, got %v", ks[1].Head[0].Atom.Value)
	}
	// Fourth constraint head: comparison over functional applications.
	if ks[3].Head[0].Cmp == nil {
		t.Fatalf("expected comparison head, got %v", ks[3].Head[0])
	}
}

func TestParseWidthAnnotatedTypeAtom(t *testing.T) {
	p := mustParse(t, `maxShelf[] = v -> float[64](v).`)
	k := p.Constraints()[0]
	h := k.Head[0].Atom
	if h == nil || h.Pred != "float" || len(h.Args) != 1 || h.Functional() {
		t.Fatalf("width-annotated type atom mis-parsed: %v", k.Head[0])
	}
}

func TestParseReactiveRules(t *testing.T) {
	p := mustParse(t, `
		+sales["Popsicle", "2015-01"] = 122.
		^price["Popsicle"] = 0.8 * x <-
			price@start["Popsicle"] = x,
			sales@start["Popsicle", "2015-01"] < 50,
			+promo("Popsicle", "2015-01").`)
	rules := p.Rules()
	if len(rules) != 2 {
		t.Fatalf("rules = %d", len(rules))
	}
	if rules[0].Heads[0].Delta != ast.DeltaPlus {
		t.Fatalf("fact delta = %v", rules[0].Heads[0].Delta)
	}
	r := rules[1]
	if r.Heads[0].Delta != ast.DeltaHat {
		t.Fatalf("head delta = %v", r.Heads[0].Delta)
	}
	if !r.Body[0].Atom.AtStart {
		t.Fatalf("expected @start atom, got %v", r.Body[0])
	}
	// sales@start[...] < 50 is a comparison over a versioned functional app;
	// the parser expresses it as comparison with FuncApp? No: @start only
	// attaches to atoms, so this body literal must be an atom-shaped parse.
	found := false
	for _, l := range r.Body {
		if l.Cmp != nil && l.Cmp.Op == ast.OpLt {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a < comparison in body: %v", r.Body)
	}
}

func TestParseNegation(t *testing.T) {
	p := mustParse(t, `lang_edb(n) <- lang_predname(n), !lang_idb(n).`)
	r := p.Rules()[0]
	if !r.Body[1].Negated {
		t.Fatalf("expected negated literal, got %v", r.Body[1])
	}
}

func TestParseDirectives(t *testing.T) {
	p := mustParse(t, "lang:solve:variable(`Stock).\nlang:solve:max(`totalProfit).")
	ds := p.Directives()
	if len(ds) != 2 {
		t.Fatalf("directives = %d", len(ds))
	}
	if ds[0].Args[0] != "Stock" || ds[1].Path[2] != "max" {
		t.Fatalf("directives mis-parsed: %v", ds)
	}
}

func TestParsePredictRule(t *testing.T) {
	p := mustParse(t, `
		SM[sku, store] = m <- predict<<m = logist(v|f)>>
			Sales[sku, store, wk] = v, Feature[sku, store, n] = f.`)
	r := p.Rules()[0]
	if r.Pred == nil || r.Pred.Func != "logist" || r.Pred.Value != "v" || r.Pred.Feature != "f" {
		t.Fatalf("predict = %+v", r.Pred)
	}
}

func TestParseQueryAnswerPredicate(t *testing.T) {
	p := mustParse(t, `_(x, s) <- week_sales[x] = s.`)
	r := p.Rules()[0]
	if r.Heads[0].Pred != "_" || len(r.Heads[0].Args) != 2 {
		t.Fatalf("answer head = %v", r.Heads[0])
	}
}

func TestParseComments(t *testing.T) {
	p := mustParse(t, `
		// Base predicates:
		a(x) <- b(x). /* block
		comment */ c(x) <- a(x).`)
	if len(p.Rules()) != 2 {
		t.Fatalf("rules = %d", len(p.Rules()))
	}
}

func TestParseNumbersAndTerminators(t *testing.T) {
	p := mustParse(t, `x[] = 122. y[] = 0.8. z[] = -3. w[] = 1.5e3.`)
	rules := p.Rules()
	wants := []tuple.Value{tuple.Int(122), tuple.Float(0.8), tuple.Int(-3), tuple.Float(1500)}
	for i, w := range wants {
		c, ok := rules[i].Heads[0].Value.(ast.Const)
		if !ok || !tuple.Equal(c.Val, w) {
			t.Fatalf("rule %d value = %v, want %v", i, rules[i].Heads[0].Value, w)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`a(x) <- b(x)`,         // missing dot
		`a(x <- b(x).`,         // unbalanced paren
		`a(x) <- @ b(x).`,      // stray @
		`"unterminated`,        // lexer error
		`a(x) -> b(x`,          // unbalanced in constraint
		`x[] = 1 <<- y(x).`,    // bad operator
		`lang:solve:max(`,      // truncated directive
		`a(x) <- b@future(x).`, // unknown version
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseErrorMentionsPosition(t *testing.T) {
	_, err := Parse("a(x) <- b(x)")
	if err == nil || !strings.Contains(err.Error(), ":") {
		t.Fatalf("error should carry position: %v", err)
	}
}

func TestRoundTripString(t *testing.T) {
	src := `profit[sku] = z <- sellingPrice[sku] = x, z = x - 1.`
	p := mustParse(t, src)
	s := p.Rules()[0].String()
	// Re-parse the pretty-printed rule: it must parse to the same shape.
	p2 := mustParse(t, s)
	if p2.Rules()[0].String() != s {
		t.Fatalf("round trip unstable: %q vs %q", s, p2.Rules()[0].String())
	}
}
