package ivm

import (
	"testing"

	"logicblox/internal/obs"
	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// TestMaintainerObservability checks that maintenance passes publish
// ivm.* counters, a per-pass span, and an apply-duration histogram.
func TestMaintainerObservability(t *testing.T) {
	prog := mustProgram(t, `q(x, z) <- e(x, y), e(y, z).`)
	base := map[string]relation.Relation{
		"e": relation.FromTuples(2, []tuple.Tuple{tuple.Ints(1, 2), tuple.Ints(2, 3)}),
	}
	m, err := NewMaintainer(prog, base, Sensitivity)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m.SetObserver(reg)
	if m.Observer() != reg {
		t.Fatal("SetObserver not visible")
	}

	if _, err := m.Apply(map[string]Delta{"e": {Ins: []tuple.Tuple{tuple.Ints(3, 4)}}}); err != nil {
		t.Fatal(err)
	}
	// An empty batch is not counted as a pass.
	if _, err := m.Apply(map[string]Delta{"e": {}}); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	if s.Counters["ivm.applies"] != 2 {
		t.Fatalf("ivm.applies = %d, want 2: %v", s.Counters["ivm.applies"], s.Counters)
	}
	if s.Counters["ivm.delta.ins"] != 1 || s.Counters["ivm.delta.del"] != 0 {
		t.Fatalf("delta counters = %v", s.Counters)
	}
	if s.Counters["ivm.rules.evaluated"] == 0 {
		t.Fatalf("no maintenance evaluations counted: %v", s.Counters)
	}
	if s.Histograms["ivm.apply.duration"].Count != 2 {
		t.Fatalf("apply histogram = %+v", s.Histograms["ivm.apply.duration"])
	}
	tr, ok := reg.LastTrace()
	if !ok || tr.Name != "ivm.apply.sensitivity" {
		t.Fatalf("last trace = %+v ok=%v", tr, ok)
	}
}

// TestSensitivitySkipsCounted checks that the sensitivity filter's skips
// reach the registry.
func TestSensitivitySkipsCounted(t *testing.T) {
	prog := mustProgram(t, `
		q(x, z) <- e(x, y), e(y, z).
		r(x) <- f(x).`)
	base := map[string]relation.Relation{
		"e": relation.FromTuples(2, []tuple.Tuple{tuple.Ints(1, 2)}),
		"f": relation.FromTuples(1, []tuple.Tuple{tuple.Ints(7)}),
	}
	m, err := NewMaintainer(prog, base, Sensitivity)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m.SetObserver(reg)
	// A change far from any recorded interval of q's join, and nothing
	// touching f: the f-rule must be skipped.
	if _, err := m.Apply(map[string]Delta{"e": {Ins: []tuple.Tuple{tuple.Ints(100, 200)}}}); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if s.Counters["ivm.rules.skipped"] == 0 {
		t.Fatalf("no skips counted: %v", s.Counters)
	}
}
