// Package trie defines the trie-iterator interface at the heart of the
// engine's join machinery (paper §3.2).
//
// An n-ary predicate, stored in lexicographically sorted order, is
// logically presented as a trie: each level corresponds to an argument
// position and each tuple to a unique root-to-leaf path. An Iterator
// combines the linear-iterator interface (Next, Seek over the siblings at
// one level) with vertical navigation (Open descends to the first child,
// Up returns to the parent). Leapfrog Triejoin is written entirely against
// this interface, so base predicates, secondary indices, and virtual
// predicates (constants, ranges) are all joinable uniformly.
package trie

import (
	"sort"

	"logicblox/internal/tuple"
)

// Iterator navigates a predicate presented as a trie.
//
// The iterator starts at the synthetic root (depth -1). Open descends one
// level and positions at the smallest key; Up pops back. At a level, Next
// advances to the next sibling and Seek(v) advances to the least sibling
// ≥ v (the probe must be ≥ the current key). Next and Seek may land "at
// end" of the level, from which only Up (or Seek again, idempotently at
// end) is legal.
//
// Complexity contract: Next and Seek are O(log N), and m ascending visits
// at one level cost amortized O(1 + log(N/m)).
type Iterator interface {
	// Key returns the key at the current position. It must only be called
	// when positioned on a key (not at end, not at the root).
	Key() tuple.Value
	// Next advances to the next key at this level.
	Next()
	// Seek advances to the least key ≥ v at this level, or to the end.
	Seek(v tuple.Value)
	// AtEnd reports whether the current level is exhausted.
	AtEnd() bool
	// Open descends to the first key one level deeper. It must only be
	// called when positioned on a key with Depth()+1 < Arity().
	Open()
	// Up returns to the parent level.
	Up()
	// Depth returns the current level: -1 at the root, 0..Arity()-1 on keys.
	Depth() int
	// Arity returns the number of levels (the predicate's arity).
	Arity() int
}

// SliceIterator is a reference Iterator over a sorted, deduplicated slice
// of tuples. It is used for virtual predicates materialized on the fly,
// in tests as a model implementation, and for small deltas.
type SliceIterator struct {
	tuples []tuple.Tuple
	arity  int
	depth  int
	// For each open level d: the half-open range [lo,hi) of tuples sharing
	// the prefix above d, and pos = index of the current key's first tuple.
	lo, hi, pos []int
	atEnd       bool
}

// NewSliceIterator returns an Iterator over tuples, which must be sorted
// and duplicate-free (use tuple.SortTuples and tuple.DedupSorted), all of
// the given arity.
func NewSliceIterator(tuples []tuple.Tuple, arity int) *SliceIterator {
	return &SliceIterator{
		tuples: tuples,
		arity:  arity,
		depth:  -1,
		lo:     make([]int, 0, arity),
		hi:     make([]int, 0, arity),
		pos:    make([]int, 0, arity),
	}
}

// Arity implements Iterator.
func (s *SliceIterator) Arity() int { return s.arity }

// Depth implements Iterator.
func (s *SliceIterator) Depth() int { return s.depth }

// AtEnd implements Iterator.
func (s *SliceIterator) AtEnd() bool { return s.atEnd }

// Key implements Iterator.
func (s *SliceIterator) Key() tuple.Value {
	if s.depth < 0 || s.atEnd {
		panic("trie: Key called at root or at end")
	}
	return s.tuples[s.pos[s.depth]][s.depth]
}

// Open implements Iterator.
func (s *SliceIterator) Open() {
	if s.depth+1 >= s.arity {
		panic("trie: Open below leaf level")
	}
	var lo, hi int
	if s.depth < 0 {
		lo, hi = 0, len(s.tuples)
	} else {
		if s.atEnd {
			panic("trie: Open at end of level")
		}
		d := s.depth
		lo = s.pos[d]
		hi = s.groupEnd(d, lo, s.hi[d])
	}
	s.depth++
	s.lo = append(s.lo, lo)
	s.hi = append(s.hi, hi)
	s.pos = append(s.pos, lo)
	s.atEnd = lo >= hi
}

// groupEnd returns the end of the run of tuples in [lo,hi) sharing
// tuples[lo][d].
func (s *SliceIterator) groupEnd(d, lo, hi int) int {
	key := s.tuples[lo][d]
	return lo + sort.Search(hi-lo, func(i int) bool {
		return tuple.Compare(s.tuples[lo+i][d], key) > 0
	})
}

// Up implements Iterator.
func (s *SliceIterator) Up() {
	if s.depth < 0 {
		panic("trie: Up at root")
	}
	s.depth--
	s.lo = s.lo[:len(s.lo)-1]
	s.hi = s.hi[:len(s.hi)-1]
	s.pos = s.pos[:len(s.pos)-1]
	s.atEnd = false
}

// Next implements Iterator.
func (s *SliceIterator) Next() {
	if s.atEnd {
		return
	}
	d := s.depth
	s.pos[d] = s.groupEnd(d, s.pos[d], s.hi[d])
	s.atEnd = s.pos[d] >= s.hi[d]
}

// Seek implements Iterator.
func (s *SliceIterator) Seek(v tuple.Value) {
	if s.atEnd {
		return
	}
	d := s.depth
	lo, hi := s.pos[d], s.hi[d]
	s.pos[d] = lo + sort.Search(hi-lo, func(i int) bool {
		return tuple.Compare(s.tuples[lo+i][d], v) >= 0
	})
	s.atEnd = s.pos[d] >= s.hi[d]
}

// ConstIterator is a virtual unary predicate holding exactly one value.
// It lets constants in queries (e.g. A(x, 2)) participate in leapfrog
// joins without materialization (paper §3.2).
type ConstIterator struct {
	val   tuple.Value
	depth int
	atEnd bool
}

// NewConstIterator returns a unary iterator over the singleton {v}.
func NewConstIterator(v tuple.Value) *ConstIterator {
	return &ConstIterator{val: v, depth: -1}
}

// Arity implements Iterator.
func (c *ConstIterator) Arity() int { return 1 }

// Depth implements Iterator.
func (c *ConstIterator) Depth() int { return c.depth }

// AtEnd implements Iterator.
func (c *ConstIterator) AtEnd() bool { return c.atEnd }

// Key implements Iterator.
func (c *ConstIterator) Key() tuple.Value {
	if c.depth != 0 || c.atEnd {
		panic("trie: Key called at root or at end")
	}
	return c.val
}

// Open implements Iterator.
func (c *ConstIterator) Open() {
	if c.depth != -1 {
		panic("trie: Open below leaf level")
	}
	c.depth = 0
	c.atEnd = false
}

// Up implements Iterator.
func (c *ConstIterator) Up() {
	if c.depth != 0 {
		panic("trie: Up at root")
	}
	c.depth = -1
	c.atEnd = false
}

// Next implements Iterator.
func (c *ConstIterator) Next() { c.atEnd = true }

// Seek implements Iterator.
func (c *ConstIterator) Seek(v tuple.Value) {
	if tuple.Compare(v, c.val) > 0 {
		c.atEnd = true
	}
}

// Collect drains an iterator depth-first from its current (root) position
// and returns all tuples. It is a testing and debugging aid.
func Collect(it Iterator) []tuple.Tuple {
	var out []tuple.Tuple
	prefix := make(tuple.Tuple, 0, it.Arity())
	var walk func()
	walk = func() {
		it.Open()
		for !it.AtEnd() {
			prefix = append(prefix, it.Key())
			if it.Depth() == it.Arity()-1 {
				out = append(out, prefix.Clone())
			} else {
				walk()
			}
			prefix = prefix[:len(prefix)-1]
			it.Next()
		}
		it.Up()
	}
	walk()
	return out
}

// OpCounter tallies the iterator operations of a join run; the optimizer
// uses the count as the cost estimate of a candidate variable order.
type OpCounter struct{ Ops int }

// Counting wraps an iterator so that every navigation bumps the counter.
func Counting(it Iterator, c *OpCounter) Iterator { return &countingIter{it: it, c: c} }

type countingIter struct {
	it Iterator
	c  *OpCounter
}

func (ci *countingIter) Key() tuple.Value { return ci.it.Key() }
func (ci *countingIter) Next()            { ci.c.Ops++; ci.it.Next() }
func (ci *countingIter) Seek(v tuple.Value) {
	ci.c.Ops++
	ci.it.Seek(v)
}
func (ci *countingIter) AtEnd() bool { return ci.it.AtEnd() }
func (ci *countingIter) Open() {
	ci.c.Ops++
	ci.it.Open()
}
func (ci *countingIter) Up()        { ci.it.Up() }
func (ci *countingIter) Depth() int { return ci.it.Depth() }
func (ci *countingIter) Arity() int { return ci.it.Arity() }
