// Package store is an immutable-analyzer negative fixture: its name is
// not in the protected set, so identical-looking mutations are legal.
package store

type node struct {
	size int
	next *node
}

func push(n *node) {
	n.size++
	n.next = nil
}
