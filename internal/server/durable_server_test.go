package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"

	"logicblox/internal/core"
	"logicblox/internal/durable"
)

// newDurableServer boots a server over a durable store on dir —
// recovery, commit hook, the works — exactly as cmd/lb-serve wires it.
func newDurableServer(t *testing.T, dir string) (*durable.Store, *Server, *httptest.Server) {
	t.Helper()
	store, err := durable.Open(dir, durable.Options{
		Generations:        2,
		CheckpointEvery:    4,
		CheckpointInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := store.Recover(func() (*core.Database, error) { return core.NewDatabase(), nil })
	if err != nil {
		t.Fatal(err)
	}
	db.SetCommitHook(store.LogCommit)
	s := New(db, Config{Durable: store})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return store, s, ts
}

func queryInts(t *testing.T, ts *httptest.Server, branch, src string) []int {
	t.Helper()
	var resp QueryResponse
	status := do(t, ts, http.MethodPost, "/query", Request{Branch: branch, Src: src}, &resp)
	if status != http.StatusOK {
		return nil
	}
	var out []int
	for _, row := range resp.Rows {
		out = append(out, int(row[0].(float64)))
	}
	sort.Ints(out)
	return out
}

// The e2e acceptance test: commit over HTTP, kill the process abruptly
// (no shutdown checkpoint, no store.Close), restart over the same data
// directory, and every acknowledged commit — base facts, installed
// blocks with their derived views, branches — is back.
func TestDurableServerKillAndRestart(t *testing.T) {
	dir := t.TempDir()
	_, _, ts := newDurableServer(t, dir)

	mustOK(t, ts, http.MethodPost, "/addblock",
		Request{Name: "views", Src: `small(x) <- p(x), x < 3.`}, nil)
	for v := 0; v < 7; v++ {
		mustOK(t, ts, http.MethodPost, "/exec", Request{Src: fmt.Sprintf("+p(%d).", v)}, nil)
	}
	mustOK(t, ts, http.MethodPost, "/branches", BranchRequest{Op: "create", From: "main", To: "scenario"}, nil)
	mustOK(t, ts, http.MethodPost, "/exec", Request{Branch: "scenario", Src: "+p(100)."}, nil)
	mustOK(t, ts, http.MethodPost, "/branches", BranchRequest{Op: "commit", From: "scenario", To: "main"}, nil)

	// Abrupt kill: drop every handle on the floor. The store is NOT
	// closed and NOT checkpointed; recovery must work from whatever the
	// journal and any background-rotated generations already hold.
	ts.Close()

	store2, _, ts2 := newDurableServer(t, dir)
	want := []int{0, 1, 2, 3, 4, 5, 6, 100}
	if got := queryInts(t, ts2, "main", `_(x) <- p(x).`); !intsEqual(got, want) {
		t.Fatalf("recovered main p = %v, want %v", got, want)
	}
	// The derived view re-derived through the replayed block install.
	if got := queryInts(t, ts2, "main", `_(x) <- small(x).`); !intsEqual(got, []int{0, 1, 2}) {
		t.Fatalf("recovered small = %v, want [0 1 2]", got)
	}
	if got := queryInts(t, ts2, "scenario", `_(x) <- p(x).`); !intsEqual(got, want) {
		t.Fatalf("recovered scenario p = %v, want %v", got, want)
	}

	// Recovery state is surfaced on /healthz.
	var health struct {
		Status  string         `json:"status"`
		Durable *durable.Stats `json:"durable"`
	}
	if status := do(t, ts2, http.MethodGet, "/healthz", nil, &health); status != http.StatusOK {
		t.Fatalf("healthz status %d", status)
	}
	if health.Durable == nil {
		t.Fatal("healthz has no durable stats")
	}
	st := store2.Stats()
	if st.JournalReplayed+int(st.RecoveredSnapshotSeq) == 0 {
		t.Fatalf("recovery restored nothing: %+v", st)
	}
}

// /load under durability re-anchors the store: the uploaded snapshot
// becomes a generation, later commits journal on top of it, and a kill
// + restart recovers the combination.
func TestDurableServerLoadThenKill(t *testing.T) {
	// Build a donor snapshot with one committed fact.
	donor := core.NewDatabase()
	ws, err := donor.Workspace(core.DefaultBranch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ws.Exec("+p(42).")
	if err != nil {
		t.Fatal(err)
	}
	if err := donor.Commit(core.DefaultBranch, res.Workspace); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	_, _, ts := newDurableServer(t, dir)
	mustOK(t, ts, http.MethodPost, "/exec", Request{Src: "+p(1)."}, nil)

	var snap bytes.Buffer
	if _, err := donor.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/load", "application/octet-stream", &snap)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/load status %d", resp.StatusCode)
	}
	mustOK(t, ts, http.MethodPost, "/exec", Request{Src: "+p(43)."}, nil)
	ts.Close() // abrupt kill

	_, _, ts2 := newDurableServer(t, dir)
	if got := queryInts(t, ts2, "main", `_(x) <- p(x).`); !intsEqual(got, []int{42, 43}) {
		t.Fatalf("recovered p = %v, want [42 43] (loaded snapshot + post-load commit)", got)
	}
}

// A corrupt /load body is rejected with the typed code and must not
// disturb the served database or the store.
func TestLoadCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	_, _, ts := newDurableServer(t, dir)
	mustOK(t, ts, http.MethodPost, "/exec", Request{Src: "+p(7)."}, nil)

	resp, err := http.Post(ts.URL+"/load", "application/octet-stream",
		bytes.NewReader([]byte("this is not a snapshot")))
	if err != nil {
		t.Fatal(err)
	}
	var errResp ErrorResponse
	json.NewDecoder(resp.Body).Decode(&errResp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || errResp.Code != "corrupt_snapshot" {
		t.Fatalf("corrupt /load: status %d code %q, want 400 corrupt_snapshot", resp.StatusCode, errResp.Code)
	}
	if got := queryInts(t, ts, "main", `_(x) <- p(x).`); !intsEqual(got, []int{7}) {
		t.Fatalf("served database disturbed by rejected load: %v", got)
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
