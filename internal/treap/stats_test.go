package treap

import "testing"

func TestStatsCounting(t *testing.T) {
	ResetStats()
	EnableStats(true)
	defer EnableStats(false)

	a := New[int, int](intOps())
	for i := 0; i < 100; i++ {
		a = a.Insert(i, i)
	}
	afterBuild := Stats()
	if afterBuild.NodesAllocated < 100 {
		t.Fatalf("nodes allocated = %d, want ≥ 100", afterBuild.NodesAllocated)
	}

	// A union of a version with a derived version prunes on the subtrees
	// the two literally share.
	b := a.Insert(1000, 1000)
	_ = a.Union(b)
	if s := Stats(); s.SharedSubtrees == afterBuild.SharedSubtrees {
		t.Fatalf("union of overlapping versions recorded no shared-subtree prunes: %+v", s)
	}

	// Equality of the same root prunes immediately.
	before := Stats().SharedSubtrees
	if !a.Equal(a) {
		t.Fatal("self equality")
	}
	if s := Stats(); s.SharedSubtrees <= before {
		t.Fatalf("self-equality recorded no prune: %+v", s)
	}
}

func TestStatsDisabled(t *testing.T) {
	EnableStats(false)
	ResetStats()
	a := New[int, int](intOps())
	for i := 0; i < 10; i++ {
		a = a.Insert(i, i)
	}
	_ = a.Union(a)
	if s := Stats(); s.NodesAllocated != 0 || s.SharedSubtrees != 0 {
		t.Fatalf("counters moved while disabled: %+v", s)
	}
	if StatsEnabled() {
		t.Fatal("StatsEnabled reports true after EnableStats(false)")
	}
}
