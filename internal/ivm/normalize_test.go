package ivm

import (
	"testing"

	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// TestRedundantDeltasAreNormalized pins a bug the differential harness
// found: re-inserting an already-present tuple is a no-op under set
// semantics, but if passed to the counting mode verbatim it added a
// second derivation count that no later deletion could retract, leaving
// a phantom tuple in the view. Apply must reduce each batch to its
// effective changes for every mode.
func TestRedundantDeltasAreNormalized(t *testing.T) {
	src := `
		d(x) <- p(x), p(x).
		d(x) <- p(x), q(x).`
	for _, mode := range allModes {
		prog := mustProgram(t, src)
		base := map[string]relation.Relation{
			"p": relation.FromTuples(1, []tuple.Tuple{tuple.Ints(1), tuple.Ints(2)}),
			"q": relation.FromTuples(1, []tuple.Tuple{tuple.Ints(1)}),
		}
		m, err := NewMaintainer(prog, cloneBase(base), mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		arities := map[string]int{"p": 1, "q": 1}

		// Redundant batch: q(1) is already present, and p(3) arrives twice.
		deltas := map[string]Delta{
			"q": {Ins: []tuple.Tuple{tuple.Ints(1)}},
			"p": {Ins: []tuple.Tuple{tuple.Ints(3), tuple.Ints(3)}},
		}
		acc, err := m.Apply(deltas)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if d := acc["q"]; !d.Empty() {
			t.Fatalf("%v: no-op insert reported as a change: %+v", mode, d)
		}
		if d := acc["p"]; len(d.Ins) != 1 {
			t.Fatalf("%v: duplicate insert not deduplicated: %+v", mode, d)
		}
		applyToBase(base, deltas, arities)
		checkAgainstOracle(t, m, prog, base, mode.String()+" after redundant insert")

		// Now the deletions that exposed the bug: both supports of d(1)
		// disappear, plus a deletion of an absent tuple (pure no-op).
		deltas = map[string]Delta{
			"p": {Del: []tuple.Tuple{tuple.Ints(1), tuple.Ints(99)}},
		}
		if _, err := m.Apply(deltas); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		applyToBase(base, deltas, arities)
		checkAgainstOracle(t, m, prog, base, mode.String()+" after delete")
		if m.Relation("d").Contains(tuple.Ints(1)) {
			t.Fatalf("%v: phantom d(1) survived the deletion of p(1)", mode)
		}
	}
}
