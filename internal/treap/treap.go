// Package treap implements persistent (purely functional) treaps with the
// unique representation property, mirroring the meta-data collections of
// the LogicBlox runtime (paper §3.1).
//
// A treap is a binary search tree ordered by key and heap-ordered by
// priority. We derive each node's priority deterministically from its key's
// hash, so the shape of the tree depends only on its contents, not on the
// operation history (Seidel–Aragon randomized search trees with derandomized
// priorities). Consequences the engine relies on:
//
//   - two treaps with equal contents are structurally identical, so
//     equality testing can prune on shared subtrees and is O(1) when the
//     trees literally share structure (the common case after branching);
//   - set operations (union, intersection, difference) run in
//     O(m log(n/m)) expected time (Blelloch & Reid-Miller, SPAA'98);
//   - all mutating operations copy only the path from the root to the
//     change, so snapshots are O(1) and versions share structure.
//
// The treap is generic over key and value types; callers supply an Ops
// with a total order and a hash for keys.
package treap

// Ops supplies the key ordering and hashing for a treap. Hash must be a
// pure function of the key: it determines node priorities and therefore
// tree shape.
type Ops[K any] struct {
	Compare func(a, b K) int
	Hash    func(K) uint64
}

// Tree is an immutable treap. The zero Tree (or nil root) is the empty
// treap. All methods leave the receiver untouched and return new trees.
type Tree[K, V any] struct {
	ops  Ops[K]
	root *node[K, V]
}

type node[K, V any] struct {
	key   K
	val   V
	prio  uint64
	size  int
	hash  uint64 // memoized structural hash of the subtree
	left  *node[K, V]
	right *node[K, V]
}

// New returns an empty treap using the given key operations.
func New[K, V any](ops Ops[K]) Tree[K, V] {
	return Tree[K, V]{ops: ops}
}

// Len returns the number of entries.
func (t Tree[K, V]) Len() int { return t.root.len() }

func (n *node[K, V]) len() int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *node[K, V]) subHash() uint64 {
	if n == nil {
		return 0
	}
	return n.hash
}

// IsEmpty reports whether the treap has no entries.
func (t Tree[K, V]) IsEmpty() bool { return t.root == nil }

func (t Tree[K, V]) mk(key K, val V, prio uint64, left, right *node[K, V]) *node[K, V] {
	countAlloc()
	h := prio // priority already encodes the key hash
	// Mix in a hash of the value region indirectly: structural hash covers
	// keys and shape; values are compared explicitly where needed.
	h ^= left.subHash()*0x9e3779b97f4a7c15 + right.subHash()*0xc2b2ae3d27d4eb4f + 0x165667b19e3779f9
	return &node[K, V]{
		key: key, val: val, prio: prio,
		size: 1 + left.len() + right.len(),
		hash: h,
		left: left, right: right,
	}
}

// Get returns the value stored under key.
func (t Tree[K, V]) Get(key K) (V, bool) {
	n := t.root
	for n != nil {
		switch c := t.ops.Compare(key, n.key); {
		case c < 0:
			n = n.left
		case c > 0:
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Contains reports whether key is present.
func (t Tree[K, V]) Contains(key K) bool {
	_, ok := t.Get(key)
	return ok
}

// Insert returns a treap with key bound to val (replacing any previous
// binding).
func (t Tree[K, V]) Insert(key K, val V) Tree[K, V] {
	prio := t.ops.Hash(key)
	return Tree[K, V]{ops: t.ops, root: t.insert(t.root, key, val, prio)}
}

func (t Tree[K, V]) insert(n *node[K, V], key K, val V, prio uint64) *node[K, V] {
	if n == nil {
		return t.mk(key, val, prio, nil, nil)
	}
	c := t.ops.Compare(key, n.key)
	if c == 0 {
		return t.mk(key, val, prio, n.left, n.right)
	}
	if prio > n.prio || (prio == n.prio && c < 0) {
		// New node becomes the root of this subtree: split around key.
		l, _, _, r := t.split(n, key)
		return t.mk(key, val, prio, l, r)
	}
	if c < 0 {
		return t.mk(n.key, n.val, n.prio, t.insert(n.left, key, val, prio), n.right)
	}
	return t.mk(n.key, n.val, n.prio, n.left, t.insert(n.right, key, val, prio))
}

// Delete returns a treap without key. It returns the receiver unchanged
// (sharing the same root) if key is absent.
func (t Tree[K, V]) Delete(key K) Tree[K, V] {
	root, changed := t.delete(t.root, key)
	if !changed {
		return t
	}
	return Tree[K, V]{ops: t.ops, root: root}
}

func (t Tree[K, V]) delete(n *node[K, V], key K) (*node[K, V], bool) {
	if n == nil {
		return nil, false
	}
	switch c := t.ops.Compare(key, n.key); {
	case c < 0:
		l, ch := t.delete(n.left, key)
		if !ch {
			return n, false
		}
		return t.mk(n.key, n.val, n.prio, l, n.right), true
	case c > 0:
		r, ch := t.delete(n.right, key)
		if !ch {
			return n, false
		}
		return t.mk(n.key, n.val, n.prio, n.left, r), true
	default:
		return t.join(n.left, n.right), true
	}
}

// split divides subtree n into nodes <key, the node ==key (if present),
// and nodes >key.
func (t Tree[K, V]) split(n *node[K, V], key K) (l *node[K, V], eq bool, eqVal V, r *node[K, V]) {
	if n == nil {
		return nil, false, eqVal, nil
	}
	switch c := t.ops.Compare(key, n.key); {
	case c < 0:
		ll, e, ev, lr := t.split(n.left, key)
		return ll, e, ev, t.mk(n.key, n.val, n.prio, lr, n.right)
	case c > 0:
		rl, e, ev, rr := t.split(n.right, key)
		return t.mk(n.key, n.val, n.prio, n.left, rl), e, ev, rr
	default:
		return n.left, true, n.val, n.right
	}
}

// join concatenates two treaps where every key in l is less than every key
// in r.
func (t Tree[K, V]) join(l, r *node[K, V]) *node[K, V] {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case l.prio > r.prio || (l.prio == r.prio && t.ops.Compare(l.key, r.key) < 0):
		return t.mk(l.key, l.val, l.prio, l.left, t.join(l.right, r))
	default:
		return t.mk(r.key, r.val, r.prio, t.join(l, r.left), r.right)
	}
}

// Union returns the set union; on keys present in both, the value from t
// wins. Runs in O(m log(n/m)) expected time and shares structure with the
// inputs.
func (t Tree[K, V]) Union(u Tree[K, V]) Tree[K, V] {
	return t.UnionWith(u, func(a, b V) V { return a })
}

// UnionWith is Union with an explicit merge function applied to values of
// keys present in both trees (receiver's value is the first argument).
func (t Tree[K, V]) UnionWith(u Tree[K, V], merge func(a, b V) V) Tree[K, V] {
	return Tree[K, V]{ops: t.ops, root: t.union(t.root, u.root, merge)}
}

func (t Tree[K, V]) union(a, b *node[K, V], merge func(x, y V) V) *node[K, V] {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case a == b:
		countShared()
		return a
	}
	if b.prio > a.prio || (b.prio == a.prio && t.ops.Compare(b.key, a.key) < 0) {
		// Keep b's node at the root but prefer a's value when both have the key.
		l, eq, ev, r := t.split(a, b.key)
		val := b.val
		if eq {
			val = merge(ev, b.val)
		}
		return t.mk(b.key, val, b.prio, t.union(l, b.left, merge), t.union(r, b.right, merge))
	}
	l, eq, ev, r := t.split(b, a.key)
	val := a.val
	if eq {
		val = merge(a.val, ev)
	}
	return t.mk(a.key, val, a.prio, t.union(a.left, l, merge), t.union(a.right, r, merge))
}

// Intersect returns the treap containing keys present in both trees, with
// values from t.
func (t Tree[K, V]) Intersect(u Tree[K, V]) Tree[K, V] {
	return Tree[K, V]{ops: t.ops, root: t.intersect(t.root, u.root)}
}

func (t Tree[K, V]) intersect(a, b *node[K, V]) *node[K, V] {
	if a == nil || b == nil {
		return nil
	}
	if a == b {
		countShared()
		return a
	}
	// Pivot on the higher-priority root to keep the result heap-ordered;
	// values always come from the a side.
	if b.prio > a.prio || (b.prio == a.prio && t.ops.Compare(b.key, a.key) < 0) {
		l, eq, ev, r := t.split(a, b.key)
		il := t.intersect(l, b.left)
		ir := t.intersect(r, b.right)
		if eq {
			return t.mk(b.key, ev, b.prio, il, ir)
		}
		return t.join(il, ir)
	}
	l, eq, _, r := t.split(b, a.key)
	il := t.intersect(a.left, l)
	ir := t.intersect(a.right, r)
	if eq {
		return t.mk(a.key, a.val, a.prio, il, ir)
	}
	return t.join(il, ir)
}

// Difference returns the treap of keys in t that are not in u.
func (t Tree[K, V]) Difference(u Tree[K, V]) Tree[K, V] {
	return Tree[K, V]{ops: t.ops, root: t.difference(t.root, u.root)}
}

func (t Tree[K, V]) difference(a, b *node[K, V]) *node[K, V] {
	switch {
	case a == nil:
		return nil
	case b == nil:
		return a
	case a == b:
		countShared()
		return nil
	}
	l, eq, _, r := t.split(b, a.key)
	dl := t.difference(a.left, l)
	dr := t.difference(a.right, r)
	if eq {
		return t.join(dl, dr)
	}
	return t.mk(a.key, a.val, a.prio, dl, dr)
}

// Equal reports whether t and u contain exactly the same keys, pruning on
// shared subtrees. With unique representation, equal contents imply equal
// shape, so this is O(size of unshared region); it is O(1) for trees that
// share their root (e.g. a branch and its parent before divergence).
// Values are not compared; use EqualFunc for that.
func (t Tree[K, V]) Equal(u Tree[K, V]) bool {
	return t.equalNodes(t.root, u.root, nil)
}

// EqualFunc is Equal but additionally requires values to match under eq.
func (t Tree[K, V]) EqualFunc(u Tree[K, V], eq func(a, b V) bool) bool {
	return t.equalNodes(t.root, u.root, eq)
}

func (t Tree[K, V]) equalNodes(a, b *node[K, V], eq func(x, y V) bool) bool {
	if a == b {
		if a != nil {
			countShared()
		}
		return true // shared subtree: keys and values are literally identical
	}
	if a == nil || b == nil {
		return false
	}
	if a.size != b.size || a.hash != b.hash {
		return false
	}
	if t.ops.Compare(a.key, b.key) != 0 {
		return false
	}
	if eq != nil && !eq(a.val, b.val) {
		return false
	}
	return t.equalNodes(a.left, b.left, eq) && t.equalNodes(a.right, b.right, eq)
}

// StructuralHash returns the memoized hash of the whole tree. Trees with
// equal key sets have equal hashes; unequal trees collide with negligible
// probability. This provides the paper's "extensional equality testing in
// O(1) time" (probabilistically) for meta-data objects.
func (t Tree[K, V]) StructuralHash() uint64 { return t.root.subHash() }

// Min returns the smallest key and its value.
func (t Tree[K, V]) Min() (K, V, bool) {
	n := t.root
	if n == nil {
		var k K
		var v V
		return k, v, false
	}
	for n.left != nil {
		n = n.left
	}
	return n.key, n.val, true
}

// Max returns the largest key and its value.
func (t Tree[K, V]) Max() (K, V, bool) {
	n := t.root
	if n == nil {
		var k K
		var v V
		return k, v, false
	}
	for n.right != nil {
		n = n.right
	}
	return n.key, n.val, true
}

// At returns the i-th entry in key order (0-based rank query).
func (t Tree[K, V]) At(i int) (K, V, bool) {
	n := t.root
	for n != nil {
		ls := n.left.len()
		switch {
		case i < ls:
			n = n.left
		case i > ls:
			i -= ls + 1
			n = n.right
		default:
			return n.key, n.val, true
		}
	}
	var k K
	var v V
	return k, v, false
}

// Ascend calls fn for each entry in ascending key order until fn returns
// false.
func (t Tree[K, V]) Ascend(fn func(key K, val V) bool) {
	ascend(t.root, fn)
}

func ascend[K, V any](n *node[K, V], fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	return ascend(n.left, fn) && fn(n.key, n.val) && ascend(n.right, fn)
}

// DiffWith reports entries that differ between t (old) and u (new),
// pruning shared subtrees, so the cost is proportional to the amount of
// unshared structure — the basis for efficient version diffing (§3.1).
// For keys only in t it calls onDel; only in u, onIns; in both with
// values distinguishable by valEq==false, onUpd.
func (t Tree[K, V]) DiffWith(u Tree[K, V], valEq func(a, b V) bool,
	onDel func(K, V), onIns func(K, V), onUpd func(K, V, V)) {
	t.diff(t.root, u.root, valEq, onDel, onIns, onUpd)
}

func (t Tree[K, V]) diff(a, b *node[K, V], valEq func(x, y V) bool,
	onDel func(K, V), onIns func(K, V), onUpd func(K, V, V)) {
	if a == b {
		if a != nil {
			countShared()
		}
		return
	}
	if a == nil {
		ascend(b, func(k K, v V) bool { onIns(k, v); return true })
		return
	}
	if b == nil {
		ascend(a, func(k K, v V) bool { onDel(k, v); return true })
		return
	}
	// Align on the higher-priority root so both sides split consistently.
	if b.prio > a.prio || (b.prio == a.prio && t.ops.Compare(b.key, a.key) < 0) {
		l, eq, ev, r := t.split(a, b.key)
		if eq {
			if valEq != nil && !valEq(ev, b.val) {
				onUpd(b.key, ev, b.val)
			}
		} else {
			onIns(b.key, b.val)
		}
		t.diff(l, b.left, valEq, onDel, onIns, onUpd)
		t.diff(r, b.right, valEq, onDel, onIns, onUpd)
		return
	}
	l, eq, ev, r := t.split(b, a.key)
	if eq {
		if valEq != nil && !valEq(a.val, ev) {
			onUpd(a.key, a.val, ev)
		}
	} else {
		onDel(a.key, a.val)
	}
	t.diff(a.left, l, valEq, onDel, onIns, onUpd)
	t.diff(a.right, r, valEq, onDel, onIns, onUpd)
}

// Keys returns all keys in ascending order.
func (t Tree[K, V]) Keys() []K {
	out := make([]K, 0, t.Len())
	t.Ascend(func(k K, _ V) bool { out = append(out, k); return true })
	return out
}
