package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"

	"logicblox/internal/core"
	"logicblox/internal/obs"
)

// errBusy rejects a request when the worker pool and its wait queue are
// both full; clients should back off and retry.
var errBusy = errors.New("worker pool saturated")

// statusFor maps an error chain onto an HTTP status via the core typed
// sentinels — no string sniffing.
func statusFor(err error) (status int, code string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, "timeout"
	case errors.Is(err, core.ErrNoSuchBranch):
		return http.StatusNotFound, "no_such_branch"
	case errors.Is(err, core.ErrConflict):
		return http.StatusConflict, "conflict"
	case errors.Is(err, core.ErrBranchExists):
		return http.StatusConflict, "branch_exists"
	case errors.Is(err, core.ErrConstraint):
		return http.StatusConflict, "constraint"
	case errors.Is(err, core.ErrParse):
		return http.StatusBadRequest, "parse"
	case errors.Is(err, core.ErrTypecheck):
		return http.StatusUnprocessableEntity, "typecheck"
	case errors.Is(err, core.ErrCorruptSnapshot):
		return http.StatusBadRequest, "corrupt_snapshot"
	case errors.Is(err, core.ErrDurability):
		return http.StatusInternalServerError, "durability"
	case errors.Is(err, errBusy):
		return http.StatusServiceUnavailable, "busy"
	case errors.Is(err, errBadCursor):
		return http.StatusBadRequest, "bad_cursor"
	case errors.Is(err, errStaleCursor):
		return http.StatusGone, "stale_cursor"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func writeErrorCode(w http.ResponseWriter, status int, code, msg, requestID string) {
	if status == http.StatusServiceUnavailable {
		// Jittered so a fleet of rejected clients does not retry in
		// lockstep and re-saturate the pool on the same tick.
		w.Header().Set("Retry-After", strconv.Itoa(1+rand.IntN(3)))
	}
	writeJSON(w, status, ErrorResponse{Error: msg, Code: code, RequestID: requestID})
}

// backoffConflict sleeps before optimistic re-execution attempt n
// (1-based): exponential from 2ms capped at 50ms, with full jitter so
// colliding writers desynchronize instead of re-colliding. It returns
// early if the request's context ends first.
func backoffConflict(ctx context.Context, attempt int) {
	d := 2 * time.Millisecond << min(attempt-1, 5)
	if d > 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	d = time.Duration(rand.Int64N(int64(d))) + time.Millisecond
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// writeError maps err onto the wire error envelope, stamping the
// request's ID so a failure is correlatable with its access-log line and
// retained trace.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	status, code := statusFor(err)
	s.reg.Counter("server.errors." + code).Inc()
	writeErrorCode(w, status, code, err.Error(), requestIDFrom(r.Context()))
}

// statusRecorder captures the response status for per-endpoint counters.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Flush forwards to the wrapped writer so streamed NDJSON chunks reach
// the client as they are produced rather than at end of request.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// acquire admits the request into the bounded worker pool: it blocks
// until a worker slot frees up, the context ends, or the wait queue is
// already full (errBusy). The server.queue.depth gauge tracks requests
// waiting for a slot; the time spent waiting is recorded on the request's
// info for the access log and the server.queue.wait histogram.
func (s *Server) acquire(ctx context.Context) error {
	t0 := time.Now()
	defer func() {
		wait := time.Since(t0)
		if info := requestInfoFrom(ctx); info != nil {
			info.queueWait = wait
		}
		s.reg.Histogram("server.queue.wait").Observe(wait)
	}()
	depth := s.queued.Add(1)
	s.reg.Gauge("server.queue.depth").Set(depth)
	defer func() { s.reg.Gauge("server.queue.depth").Set(s.queued.Add(-1)) }()
	if depth > int64(s.cfg.Workers+s.cfg.Queue) {
		s.reg.Counter("server.pool.rejected").Inc()
		return errBusy
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.sem }

// endpoint wraps a handler with the service middleware: method check,
// request identity (X-Request-ID accepted or generated, echoed on the
// response, carried in the context), drain rejection (503 + Retry-After),
// panic recovery (500 in the standard wire error envelope + a marked
// trace span), per-endpoint request/latency/status metrics, the JSON
// access log, the slow-query log, the request-scoped trace ring, the
// default request deadline, and — for transaction endpoints — admission
// through the bounded worker pool.
func (s *Server) endpoint(name, method string, pooled bool, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			writeErrorCode(w, http.StatusMethodNotAllowed, "bad_request", method+" required", requestID(r))
			return
		}
		info := &requestInfo{id: requestID(r)}
		r = withRequestInfo(r, info)
		w.Header().Set(requestIDHeader, info.id)
		t0 := time.Now()
		if s.draining.Load() {
			s.reg.Counter("server.drained_rejects").Inc()
			rec := &statusRecorder{ResponseWriter: w}
			writeErrorCode(rec, http.StatusServiceUnavailable, "unavailable", "server is draining", info.id)
			s.logAccess(r, name, rec.status, time.Since(t0), info)
			return
		}
		s.reg.Counter("http." + name + ".requests").Inc()
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		sp := s.reg.StartSpan("http." + name)
		rec := &statusRecorder{ResponseWriter: w}
		defer func() {
			if p := recover(); p != nil {
				// An engine panic must not take the server down: convert
				// to a 500 in the standard wire error envelope (with the
				// request ID) and mark the request's trace span.
				sp.SetAttr("panic", 1)
				s.reg.Counter("server.panics").Inc()
				if rec.status == 0 {
					writeErrorCode(rec, http.StatusInternalServerError, "internal", fmt.Sprintf("internal error: %v", p), info.id)
				}
			}
			dur := time.Since(t0)
			sp.SetAttr("status", int64(rec.status))
			sp.End()
			s.traces.put(&traceEntry{id: info.id, endpoint: name, status: rec.status, span: sp})
			s.reg.Histogram("http." + name + ".duration").Observe(dur)
			s.reg.Counter("http." + name + ".status." + strconv.Itoa(rec.status)).Inc()
			s.logAccess(r, name, rec.status, dur, info)
			s.logSlow(r, name, rec.status, dur, info, sp)
		}()

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
		defer cancel()
		ctx = obs.ContextWithSpan(ctx, sp)
		if pooled {
			if err := s.acquire(ctx); err != nil {
				s.writeError(rec, r, err)
				return
			}
			defer s.release()
		}
		h(rec, r.WithContext(ctx))
	})
}

// logAccess emits one JSON access-log line (no-op without a configured
// logger): method, path, status, duration, request ID, branch, and the
// time the request spent queued for a worker.
func (s *Server) logAccess(r *http.Request, endpoint string, status int, dur time.Duration, info *requestInfo) {
	if s.cfg.AccessLog == nil {
		return
	}
	s.cfg.AccessLog.LogAttrs(context.Background(), slog.LevelInfo, "request",
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.String("endpoint", endpoint),
		slog.Int("status", status),
		slog.Float64("duration_ms", float64(dur)/float64(time.Millisecond)),
		slog.String("request_id", info.id),
		slog.String("branch", info.branch),
		slog.Float64("queue_wait_ms", float64(info.queueWait)/float64(time.Millisecond)),
	)
}

// logSlow emits a slow-query log entry when the request ran longer than
// the configured threshold: the full span tree (request root down to the
// engine's per-rule spans) plus the fingerprints of the adaptive
// optimizer's cached plans in play, so a slow request is explainable
// without reproducing it.
func (s *Server) logSlow(r *http.Request, endpoint string, status int, dur time.Duration, info *requestInfo, sp *obs.Span) {
	if s.cfg.AccessLog == nil || s.cfg.SlowQuery <= 0 || dur < s.cfg.SlowQuery {
		return
	}
	s.reg.Counter("server.slow_queries").Inc()
	attrs := []slog.Attr{
		slog.String("endpoint", endpoint),
		slog.Int("status", status),
		slog.Float64("duration_ms", float64(dur)/float64(time.Millisecond)),
		slog.String("request_id", info.id),
		slog.String("branch", info.branch),
		slog.Any("trace", sp.Snapshot()),
	}
	if ws, err := s.Database().Workspace(core.DefaultBranch); err == nil {
		if ps := ws.PlanStore(); ps != nil {
			var fps []string
			for _, p := range ps.Snapshot() {
				fps = append(fps, p.Fingerprint)
				if len(fps) == 8 {
					break
				}
			}
			if len(fps) > 0 {
				attrs = append(attrs, slog.Any("plan_fingerprints", fps))
			}
		}
	}
	s.cfg.AccessLog.LogAttrs(context.Background(), slog.LevelWarn, "slow_query", attrs...)
}
