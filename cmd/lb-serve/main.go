// Command lb-serve exposes a logicblox database over HTTP. Requests run
// as concurrent transactions with optimistic commits, per-request
// deadlines honored inside the engine, and Prometheus metrics on
// /metrics; see docs/server.md for the API.
//
// Usage:
//
//	lb-serve [-addr :8080] [-workers N] [-queue N] [-timeout 30s]
//	         [-retries 3] [-adaptive-opt]
//	         [-data-dir dir [-fsync always|interval] [-fsync-interval 50ms]
//	          [-checkpoint-every 256] [-checkpoint-interval 30s]
//	          [-generations 3]]
//	         [-snapshot file]
//
// With -data-dir, the server runs durably: at startup it recovers the
// database from the newest valid snapshot generation plus a replay of
// the commit journal, and every committed transaction is journaled
// write-ahead before the client sees its ack (see docs/durability.md).
// With -snapshot (mutually exclusive), the database is loaded from the
// file at startup (if it exists) and written back there — atomically
// and fsynced — on shutdown; nothing is durable in between. On
// SIGINT/SIGTERM the server drains: new requests get 503 + Retry-After
// while in-flight transactions finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"logicblox"
	"logicblox/internal/core"
	"logicblox/internal/durable"
	"logicblox/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "max concurrently executing transactions (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max requests waiting for a worker before 503 (0 = 64)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	retries := flag.Int("retries", 3, "max optimistic re-executions after commit conflicts")
	adaptive := flag.Bool("adaptive-opt", false, "feedback-driven join-order optimization with a cached plan store")
	snapshot := flag.String("snapshot", "", "load the database from this file at startup and save it on shutdown (no journaling; see -data-dir)")
	dataDir := flag.String("data-dir", "", "run durably from this directory: snapshot generations + write-ahead commit journal")
	fsync := flag.String("fsync", durable.FsyncAlways, "journal fsync policy: always (durable acks) or interval (bounded loss, higher throughput)")
	fsyncInterval := flag.Duration("fsync-interval", 50*time.Millisecond, "journal flush period under -fsync interval")
	ckptEvery := flag.Int("checkpoint-every", 256, "checkpoint after this many journaled commits (<0 disables)")
	ckptInterval := flag.Duration("checkpoint-interval", 30*time.Second, "checkpoint at least this often while commits are pending (<0 disables)")
	generations := flag.Int("generations", 3, "rotated snapshot generations to keep in -data-dir")
	grace := flag.Duration("grace", 15*time.Second, "max time to drain in-flight requests on shutdown")
	flag.Parse()

	if *dataDir != "" && *snapshot != "" {
		log.Fatalf("lb-serve: -data-dir and -snapshot are mutually exclusive (the data directory manages its own snapshots)")
	}

	reg := logicblox.NewObsRegistry()
	logicblox.EnableStorageStats(true)

	var db *core.Database
	var store *durable.Store
	var err error
	if *dataDir != "" {
		store, db, err = openDurable(*dataDir, durable.Options{
			Fsync:              *fsync,
			FsyncInterval:      *fsyncInterval,
			CheckpointEvery:    *ckptEvery,
			CheckpointInterval: *ckptInterval,
			Generations:        *generations,
			Obs:                reg,
		}, *adaptive)
	} else {
		db, err = openDatabase(*snapshot, *adaptive)
	}
	if err != nil {
		log.Fatalf("lb-serve: %v", err)
	}

	s := server.New(db, server.Config{
		Workers:    *workers,
		Queue:      *queue,
		Timeout:    *timeout,
		MaxRetries: *retries,
		Obs:        reg,
		Durable:    store,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	go func() {
		log.Printf("lb-serve: listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("lb-serve: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	// Graceful shutdown: reject new work immediately, then drain.
	log.Printf("lb-serve: draining (%d in flight)", s.Inflight())
	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("lb-serve: shutdown: %v", err)
	}

	if store != nil {
		// Fold the journal tail into a final snapshot so the next boot
		// replays nothing; the journal keeps every record the retained
		// generations need, so even a failure here loses no commit.
		if err := store.Checkpoint(s.Database().SaveSnapshot); err != nil {
			log.Printf("lb-serve: final checkpoint: %v", err)
		}
		if err := store.Close(); err != nil {
			log.Printf("lb-serve: closing store: %v", err)
		}
	}
	if *snapshot != "" {
		if err := saveDatabase(*snapshot, s.Database()); err != nil {
			log.Fatalf("lb-serve: save snapshot: %v", err)
		}
		log.Printf("lb-serve: snapshot written to %s", *snapshot)
	}
}

// openDurable opens the data directory, recovers the database it
// describes (newest valid snapshot generation + journal replay), hooks
// the journal into the commit path and starts the background
// checkpointer.
func openDurable(dir string, opts durable.Options, adaptive bool) (*durable.Store, *core.Database, error) {
	store, err := durable.Open(dir, opts)
	if err != nil {
		return nil, nil, err
	}
	db, err := store.Recover(func() (*core.Database, error) {
		return newDatabase(adaptive), nil
	})
	if err != nil {
		store.Close()
		return nil, nil, fmt.Errorf("recovering %s: %w", dir, err)
	}
	st := store.Stats()
	log.Printf("lb-serve: recovered %s (snapshot seq %d, %d journal records replayed, %d corrupt generations skipped)",
		dir, st.RecoveredSnapshotSeq, st.JournalReplayed, st.CorruptSkipped)
	db.SetCommitHook(store.LogCommit)
	store.Start(db.SaveSnapshot)
	return store, db, nil
}

func newDatabase(adaptive bool) *core.Database {
	var opts []logicblox.Option
	if adaptive {
		opts = append(opts, logicblox.WithAdaptiveOptimizer())
	}
	return logicblox.Open(opts...)
}

// openDatabase loads the snapshot when one is named and present,
// otherwise opens a fresh database. Framed (checksummed) and legacy raw
// gob snapshot files are both accepted.
func openDatabase(path string, adaptive bool) (*core.Database, error) {
	if path != "" {
		payload, err := durable.ReadSnapshotFile(durable.OS, path)
		if err == nil {
			db, err := durable.LoadSnapshotPayload(payload)
			if err != nil {
				return nil, fmt.Errorf("load %s: %w", path, err)
			}
			log.Printf("lb-serve: loaded snapshot %s (%d versions)", path, db.Versions())
			return db, nil
		}
		if !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
	}
	return newDatabase(adaptive), nil
}

// saveDatabase writes the snapshot atomically (temp file, fsync, rename,
// directory fsync) with the framed checksummed header, so a crash
// mid-save cannot corrupt the previous one and a later load detects any
// on-disk corruption.
func saveDatabase(path string, db *core.Database) error {
	return durable.WriteDatabaseSnapshot(durable.OS, path, db)
}
