package core

import (
	"errors"
	"strings"
	"testing"

	"logicblox/internal/analysis/logiql"
)

func checkWarns(t *testing.T, ws *Workspace, src string) []logiql.Warning {
	t.Helper()
	warns, err := ws.CheckProgram(src)
	if err != nil {
		t.Fatalf("CheckProgram: %v", err)
	}
	return warns
}

func hasCheck(warns []logiql.Warning, check, substr string) bool {
	for _, w := range warns {
		if w.Check == check && (strings.Contains(w.Message, substr) || strings.Contains(w.Clause, substr)) {
			return true
		}
	}
	return false
}

func TestCheckProgramWarnsWithoutRejecting(t *testing.T) {
	ws := NewWorkspace()
	ws, err := ws.AddBlock("base", "sales(sku, units) -> string(sku), int(units).")
	if err != nil {
		t.Fatal(err)
	}
	// The candidate has a singleton variable and an unconsumed head: both
	// warn, neither rejects.
	warns := checkWarns(t, ws, "audit(sku) <- sales(sku, week).")
	if !hasCheck(warns, logiql.CheckSingleton, `"week"`) {
		t.Errorf("missing singleton warning: %v", warns)
	}
	if !hasCheck(warns, logiql.CheckUnconsumed, "audit") {
		t.Errorf("missing unconsumed warning: %v", warns)
	}
	// The candidate must still be installable: warnings are advisory.
	if _, err := ws.AddBlock("audit", "audit(sku) <- sales(sku, week)."); err != nil {
		t.Fatalf("warned program was rejected: %v", err)
	}
}

func TestCheckProgramParseErrorWrapped(t *testing.T) {
	ws := NewWorkspace()
	_, err := ws.CheckProgram("this is not logiql <-")
	if !errors.Is(err, ErrParse) {
		t.Fatalf("got %v, want ErrParse", err)
	}
}

func TestCheckProgramSeesWholeWorkspace(t *testing.T) {
	ws := NewWorkspace()
	ws, err := ws.AddBlock("producer", "flagged(sku) <- sales(sku).")
	if err != nil {
		t.Fatal(err)
	}
	// Standalone, flagged is unconsumed.
	if !hasCheck(checkWarns(t, ws, ""), logiql.CheckUnconsumed, "flagged") {
		t.Fatal("flagged should be unconsumed before a consumer exists")
	}
	// A candidate consuming it clears the warning under the merge.
	if hasCheck(checkWarns(t, ws, "report(sku) <- flagged(sku).\nreport(sku) -> string(sku)."), logiql.CheckUnconsumed, "flagged") {
		t.Fatal("candidate consumer should clear the unconsumed warning")
	}
}

func TestCheckProgramRuleDiesWhenAddblockReplacesConsumer(t *testing.T) {
	ws := NewWorkspace()
	ws, err := ws.AddBlock("producer", "flagged(sku) <- sales(sku).")
	if err != nil {
		t.Fatal(err)
	}
	ws, err = ws.AddBlock("consumer", "report(sku) <- flagged(sku).\nreport(sku) -> string(sku).")
	if err != nil {
		t.Fatal(err)
	}
	if hasCheck(checkWarns(t, ws, ""), logiql.CheckUnconsumed, "flagged") {
		t.Fatal("flagged is consumed; no warning expected yet")
	}
	// Replace the consumer block with one that no longer reads flagged:
	// only now does the producer rule become invisible.
	ws, err = ws.RemoveBlock("consumer")
	if err != nil {
		t.Fatal(err)
	}
	ws, err = ws.AddBlock("consumer", "report(sku) <- sales(sku).\nreport(sku) -> string(sku).")
	if err != nil {
		t.Fatal(err)
	}
	if !hasCheck(checkWarns(t, ws, ""), logiql.CheckUnconsumed, "flagged") {
		t.Fatal("replacing the consumer block should orphan the producer rule")
	}
}
