package analysis

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixtures type-checks the named fixture packages under testdata/src
// through the real loader, so every analyzer test also exercises Load.
func loadFixtures(t *testing.T, dirs ...string) []*Package {
	t.Helper()
	patterns := make([]string, len(dirs))
	for i, d := range dirs {
		patterns[i] = "./testdata/src/" + d
	}
	pkgs, err := Load(".", patterns...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", dirs, err)
	}
	if len(pkgs) < len(dirs) {
		t.Fatalf("loaded %d packages for %d fixture dirs", len(pkgs), len(dirs))
	}
	return pkgs
}

// want is one expectation parsed from a `// want: substring` marker: the
// named analyzer must report a diagnostic on that line whose message
// contains the substring.
type want struct {
	file   string
	line   int
	substr string
}

func readWants(t *testing.T, dirs ...string) []want {
	t.Helper()
	var wants []want
	for _, dir := range dirs {
		paths, err := filepath.Glob(filepath.Join("testdata", "src", dir, "*.go"))
		if err != nil || len(paths) == 0 {
			t.Fatalf("no fixture files in %s (err=%v)", dir, err)
		}
		for _, path := range paths {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			sc := bufio.NewScanner(f)
			for line := 1; sc.Scan(); line++ {
				text := sc.Text()
				if i := strings.Index(text, "// want:"); i >= 0 {
					wants = append(wants, want{
						file:   filepath.Base(path),
						line:   line,
						substr: strings.TrimSpace(text[i+len("// want:"):]),
					})
				}
			}
			f.Close()
		}
	}
	return wants
}

// checkFixture runs one analyzer over the fixture packages and requires
// its diagnostics to match the `// want:` markers exactly — no missing
// findings, no extras.
func checkFixture(t *testing.T, an *Analyzer, dirs ...string) {
	t.Helper()
	pkgs := loadFixtures(t, dirs...)
	diags, err := RunAnalyzers(pkgs, []*Analyzer{an})
	if err != nil {
		t.Fatal(err)
	}
	wants := readWants(t, dirs...)
	matched := make([]bool, len(wants))
outer:
	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		for i, w := range wants {
			if !matched[i] && w.file == base && w.line == d.Pos.Line && strings.Contains(d.Message, w.substr) {
				matched[i] = true
				continue outer
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("missing diagnostic at %s:%d containing %q", w.file, w.line, w.substr)
		}
	}
}

func TestImmutableAnalyzer(t *testing.T) {
	checkFixture(t, ImmutableAnalyzer, "treap", "store")
}

func TestErrwrapAnalyzer(t *testing.T) {
	checkFixture(t, ErrwrapAnalyzer, "errs")
}

func TestCtxloopAnalyzer(t *testing.T) {
	checkFixture(t, CtxloopAnalyzer, "engine", "worker", "replica")
}

func TestObssafeAnalyzer(t *testing.T) {
	checkFixture(t, ObssafeAnalyzer, "obs", "obsuser")
}

func TestCursorcloseAnalyzer(t *testing.T) {
	checkFixture(t, CursorcloseAnalyzer, "cursor")
}

func TestLocksafeAnalyzer(t *testing.T) {
	checkFixture(t, LocksafeAnalyzer, "locks", "lockorder")
}

func TestLeakcheckAnalyzer(t *testing.T) {
	checkFixture(t, LeakcheckAnalyzer, "leakres", "leaksrv")
}

func TestSnapshotEscapeAnalyzer(t *testing.T) {
	checkFixture(t, SnapshotEscapeAnalyzer, "pescape", "pescapeuser")
}

// TestLoadRealPackage loads a real repository package with its stdlib
// imports resolved through export data.
func TestLoadRealPackage(t *testing.T) {
	pkgs, err := Load("../..", "./internal/treap")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Name != "treap" {
		t.Fatalf("got %d packages, want exactly internal/treap", len(pkgs))
	}
	if pkgs[0].Types.Scope().Lookup("Tree") == nil {
		t.Fatalf("loaded treap package has no Tree type")
	}
}

// TestSuiteSelfClean runs the full suite — the CFG dataflow analyzers
// included — over every package in the module: the invariants must hold
// in the real tree with zero findings and no suppressions (make lint
// enforces the same repo-wide; this test pins it under plain go test).
func TestSuiteSelfClean(t *testing.T) {
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	diags, err := RunAnalyzers(pkgs, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("finding in real tree: %s", d)
	}
}
