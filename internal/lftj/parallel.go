package lftj

import (
	"sort"
	"sync"

	"logicblox/internal/relation"
	"logicblox/internal/trie"
	"logicblox/internal/tuple"
)

// Domain decomposition (paper §3.2): the first join variable's domain is
// split into disjoint ranges — chosen from quantiles of a predicate
// sample — and an independent leapfrog triejoin runs per range on its own
// iterators, in parallel. Because the ranges partition the first
// variable, the union of the partial results is exactly the join.

// RangeIterator is a virtual unary predicate covering the half-open
// interval [lo, hi) densely: joined on a variable, it restricts that
// variable to the range without enumerating it (Seek answers any probe in
// range with the probe itself).
type RangeIterator struct {
	lo, hi tuple.Value // hi = MaxValue means unbounded above
	cur    tuple.Value
	depth  int
	atEnd  bool
}

// NewRangeIterator returns a unary iterator over [lo, hi).
func NewRangeIterator(lo, hi tuple.Value) *RangeIterator {
	return &RangeIterator{lo: lo, hi: hi, depth: -1}
}

// Arity implements trie.Iterator.
func (r *RangeIterator) Arity() int { return 1 }

// Depth implements trie.Iterator.
func (r *RangeIterator) Depth() int { return r.depth }

// AtEnd implements trie.Iterator.
func (r *RangeIterator) AtEnd() bool { return r.atEnd }

// Key implements trie.Iterator.
func (r *RangeIterator) Key() tuple.Value {
	if r.depth != 0 || r.atEnd {
		panic("lftj: RangeIterator.Key at root or end")
	}
	return r.cur
}

// Open implements trie.Iterator.
func (r *RangeIterator) Open() {
	if r.depth != -1 {
		panic("lftj: RangeIterator.Open below leaf")
	}
	r.depth = 0
	r.cur = r.lo
	r.atEnd = !r.inRange(r.lo)
}

// Up implements trie.Iterator.
func (r *RangeIterator) Up() {
	r.depth = -1
	r.atEnd = false
}

func (r *RangeIterator) inRange(v tuple.Value) bool {
	return tuple.Compare(v, r.hi) < 0
}

// Next implements trie.Iterator: a dense range advances to the successor
// of the current key in the value order (the leapfrog search then seeks
// the real iterators past it).
func (r *RangeIterator) Next() {
	if r.atEnd {
		return
	}
	r.cur = tuple.Successor(r.cur)
	r.atEnd = !r.inRange(r.cur)
}

// Seek implements trie.Iterator.
func (r *RangeIterator) Seek(v tuple.Value) {
	if tuple.Compare(v, r.lo) < 0 {
		v = r.lo
	}
	r.cur = v
	r.atEnd = !r.inRange(v)
}

// Quantiles picks up to parts−1 cut points from the first column of a
// sample relation, splitting the domain into parts ranges of roughly
// equal sample mass.
func Quantiles(sample relation.Relation, parts int) []tuple.Value {
	if parts <= 1 {
		return nil
	}
	var firsts []tuple.Value
	seen := map[string]bool{}
	sample.ForEach(func(t tuple.Tuple) bool {
		k := t[0].String()
		if !seen[k] {
			seen[k] = true
			firsts = append(firsts, t[0])
		}
		return true
	})
	sort.Slice(firsts, func(i, j int) bool { return tuple.Less(firsts[i], firsts[j]) })
	if len(firsts) < parts {
		return nil
	}
	cuts := make([]tuple.Value, 0, parts-1)
	for i := 1; i < parts; i++ {
		cuts = append(cuts, firsts[i*len(firsts)/parts])
	}
	return cuts
}

// PartitionedRun executes the join in parallel over a domain
// decomposition of the first join variable: cuts split the domain into
// len(cuts)+1 ranges; mkAtoms must build a fresh, independent atom list
// per partition (iterators are stateful). emit is called concurrently
// from partition workers and must be safe for concurrent use — or use
// PartitionedCount / PartitionedCollect.
func PartitionedRun(numVars int, mkAtoms func() []Atom, cuts []tuple.Value,
	workers int, emit func(binding tuple.Tuple) bool) error {
	return PartitionedRunMetrics(numVars, mkAtoms, cuts, workers, nil, emit)
}

// PartitionedRunMetrics is PartitionedRun with work counting: each
// partition counts into its own local Metrics, and the totals are folded
// into m (when non-nil) after all partitions finish, so the per-partition
// hot loops stay free of shared atomic counters.
func PartitionedRunMetrics(numVars int, mkAtoms func() []Atom, cuts []tuple.Value,
	workers int, m *Metrics, emit func(binding tuple.Tuple) bool) error {
	if workers < 1 {
		workers = 1
	}
	bounds := makeBounds(cuts)
	errs := make([]error, len(bounds))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	parts := make([]Metrics, len(bounds))
	for i, b := range bounds {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, lo, hi tuple.Value) {
			defer wg.Done()
			defer func() { <-sem }()
			atoms := mkAtoms()
			atoms = append(atoms, Atom{
				Pred: "$range", Iter: NewRangeIterator(lo, hi), Vars: []int{0},
			})
			j, err := NewJoin(numVars, atoms, nil)
			if err != nil {
				errs[i] = err
				return
			}
			if m != nil {
				j.SetMetrics(&parts[i])
			}
			j.Run(emit)
		}(i, b[0], b[1])
	}
	wg.Wait()
	if m != nil {
		for i := range parts {
			m.Merge(parts[i])
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func makeBounds(cuts []tuple.Value) [][2]tuple.Value {
	lo := tuple.MinValue()
	var out [][2]tuple.Value
	for _, c := range cuts {
		out = append(out, [2]tuple.Value{lo, c})
		lo = c
	}
	out = append(out, [2]tuple.Value{lo, tuple.MaxValue()})
	return out
}

// PartitionedCount counts the join results across a domain decomposition.
func PartitionedCount(numVars int, mkAtoms func() []Atom, cuts []tuple.Value, workers int) (int, error) {
	var mu sync.Mutex
	n := 0
	err := PartitionedRun(numVars, mkAtoms, cuts, workers, func(tuple.Tuple) bool {
		mu.Lock()
		n++
		mu.Unlock()
		return true
	})
	return n, err
}

// PartitionedCollect gathers all bindings across a domain decomposition
// (order is per-partition ascending but partitions may interleave).
func PartitionedCollect(numVars int, mkAtoms func() []Atom, cuts []tuple.Value, workers int) ([]tuple.Tuple, error) {
	var mu sync.Mutex
	var out []tuple.Tuple
	err := PartitionedRun(numVars, mkAtoms, cuts, workers, func(b tuple.Tuple) bool {
		c := b.Clone()
		mu.Lock()
		out = append(out, c)
		mu.Unlock()
		return true
	})
	return out, err
}

var _ trie.Iterator = (*RangeIterator)(nil)
