// Command lb-serve exposes a logicblox database over HTTP. Requests run
// as concurrent transactions with optimistic commits, per-request
// deadlines honored inside the engine, and Prometheus metrics on
// /metrics; see docs/server.md for the API.
//
// Usage:
//
//	lb-serve [-addr :8080] [-workers N] [-queue N] [-timeout 30s]
//	         [-retries 3] [-adaptive-opt] [-snapshot file]
//
// With -snapshot, the database is loaded from the file at startup (if it
// exists) and written back there on shutdown. On SIGINT/SIGTERM the
// server drains: new requests get 503 + Retry-After while in-flight
// transactions finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"logicblox"
	"logicblox/internal/core"
	"logicblox/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "max concurrently executing transactions (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max requests waiting for a worker before 503 (0 = 64)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	retries := flag.Int("retries", 3, "max optimistic re-executions after commit conflicts")
	adaptive := flag.Bool("adaptive-opt", false, "feedback-driven join-order optimization with a cached plan store")
	snapshot := flag.String("snapshot", "", "load the database from this file at startup and save it on shutdown")
	grace := flag.Duration("grace", 15*time.Second, "max time to drain in-flight requests on shutdown")
	flag.Parse()

	db, err := openDatabase(*snapshot, *adaptive)
	if err != nil {
		log.Fatalf("lb-serve: %v", err)
	}

	reg := logicblox.NewObsRegistry()
	logicblox.EnableStorageStats(true)
	s := server.New(db, server.Config{
		Workers:    *workers,
		Queue:      *queue,
		Timeout:    *timeout,
		MaxRetries: *retries,
		Obs:        reg,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	go func() {
		log.Printf("lb-serve: listening on %s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("lb-serve: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	// Graceful shutdown: reject new work immediately, then drain.
	log.Printf("lb-serve: draining (%d in flight)", s.Inflight())
	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("lb-serve: shutdown: %v", err)
	}

	if *snapshot != "" {
		if err := saveDatabase(*snapshot, s.Database()); err != nil {
			log.Fatalf("lb-serve: save snapshot: %v", err)
		}
		log.Printf("lb-serve: snapshot written to %s", *snapshot)
	}
}

// openDatabase loads the snapshot when one is named and present,
// otherwise opens a fresh database.
func openDatabase(path string, adaptive bool) (*core.Database, error) {
	if path != "" {
		f, err := os.Open(path)
		if err == nil {
			defer f.Close()
			db, err := logicblox.LoadDatabase(f)
			if err != nil {
				return nil, fmt.Errorf("load %s: %w", path, err)
			}
			log.Printf("lb-serve: loaded snapshot %s (%d versions)", path, db.Versions())
			return db, nil
		}
		if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}
	var opts []logicblox.Option
	if adaptive {
		opts = append(opts, logicblox.WithAdaptiveOptimizer())
	}
	return logicblox.Open(opts...), nil
}

// saveDatabase writes the snapshot atomically (write-rename) so a crash
// mid-save cannot corrupt the previous one.
func saveDatabase(path string, db *core.Database) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := db.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
