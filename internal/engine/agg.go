package engine

import (
	"fmt"

	"logicblox/internal/compiler"
	"logicblox/internal/ml"
	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// aggAccum accumulates grouped aggregation state for a P2P rule
// (paper §2.2.1). Groups are keyed by the head key tuple.
type aggAccum struct {
	plan   *compiler.AggPlan
	keys   map[string]tuple.Tuple
	states map[string]*aggState
}

type aggState struct {
	count  int
	sum    float64
	allInt bool
	min    tuple.Value
	max    tuple.Value
}

func newAggAccum(plan *compiler.AggPlan) *aggAccum {
	return &aggAccum{plan: plan, keys: map[string]tuple.Tuple{}, states: map[string]*aggState{}}
}

func (a *aggAccum) add(key tuple.Tuple, binding tuple.Tuple) {
	ks := key.String()
	st, ok := a.states[ks]
	if !ok {
		st = &aggState{allInt: true}
		a.states[ks] = st
		a.keys[ks] = key.Clone()
	}
	st.count++
	if a.plan.ArgSlot < 0 {
		return
	}
	v := binding[a.plan.ArgSlot]
	if f, ok := v.Numeric(); ok {
		st.sum += f
		if v.Kind() != tuple.KindInt {
			st.allInt = false
		}
	}
	if st.count == 1 {
		st.min, st.max = v, v
		return
	}
	if tuple.Less(v, st.min) {
		st.min = v
	}
	if tuple.Less(st.max, v) {
		st.max = v
	}
}

func (a *aggAccum) finish(headArity int) (relation.Relation, error) {
	out := relation.New(headArity)
	for ks, st := range a.states {
		var v tuple.Value
		switch a.plan.Func {
		case "count":
			v = tuple.Int(int64(st.count))
		case "sum", "total":
			if st.allInt {
				v = tuple.Int(int64(st.sum))
			} else {
				v = tuple.Float(st.sum)
			}
		case "avg":
			v = tuple.Float(st.sum / float64(st.count))
		case "min":
			v = st.min
		case "max":
			v = st.max
		default:
			return out, fmt.Errorf("unknown aggregation %s", a.plan.Func)
		}
		head := make(tuple.Tuple, 0, headArity)
		head = append(head, a.keys[ks]...)
		head = append(head, v)
		out = out.Insert(head)
	}
	return out, nil
}

// predictAccum accumulates grouped training examples or evaluation
// feature vectors for predict P2P rules (paper §2.3.2).
type predictAccum struct {
	plan   *compiler.PredictPlan
	keys   map[string]tuple.Tuple
	groups map[string]*predictGroup
}

type predictGroup struct {
	examples map[string]*ml.Example // learning: keyed by example identity
	features map[string]float64     // eval: one feature vector
	model    int64                  // eval: model handle
	hasModel bool
}

func newPredictAccum(plan *compiler.PredictPlan) *predictAccum {
	return &predictAccum{plan: plan, keys: map[string]tuple.Tuple{}, groups: map[string]*predictGroup{}}
}

func slotsKey(binding tuple.Tuple, slots []int) string {
	k := make(tuple.Tuple, len(slots))
	for i, s := range slots {
		k[i] = binding[s]
	}
	return k.String()
}

func (p *predictAccum) add(key tuple.Tuple, binding tuple.Tuple) error {
	ks := key.String()
	g, ok := p.groups[ks]
	if !ok {
		g = &predictGroup{examples: map[string]*ml.Example{}, features: map[string]float64{}}
		p.groups[ks] = g
		p.keys[ks] = key.Clone()
	}
	featName := slotsKey(binding, p.plan.FeatNameSlots)
	featVal, ok := binding[p.plan.FeatureSlot].Numeric()
	if !ok {
		return fmt.Errorf("feature value %s is not numeric", binding[p.plan.FeatureSlot])
	}
	if p.plan.Func == "eval" {
		v := binding[p.plan.ValueSlot]
		if v.Kind() != tuple.KindInt {
			return fmt.Errorf("model handle %s is not an integer", v)
		}
		g.model = v.AsInt()
		g.hasModel = true
		g.features[featName] = featVal
		return nil
	}
	exKey := slotsKey(binding, p.plan.ValueKeySlots)
	ex, ok := g.examples[exKey]
	if !ok {
		ex = &ml.Example{Features: map[string]float64{}}
		g.examples[exKey] = ex
	}
	target, ok := binding[p.plan.ValueSlot].Numeric()
	if !ok {
		return fmt.Errorf("training target %s is not numeric", binding[p.plan.ValueSlot])
	}
	ex.Target = target
	ex.Features[featName] = featVal
	return nil
}

func (p *predictAccum) finish(headArity int, models *ml.Registry) (relation.Relation, error) {
	out := relation.New(headArity)
	if models == nil {
		return out, fmt.Errorf("predict rule requires a model registry")
	}
	for ks, g := range p.groups {
		var v tuple.Value
		switch p.plan.Func {
		case "eval":
			if !g.hasModel {
				continue
			}
			m, ok := models.Get(g.model)
			if !ok {
				return out, fmt.Errorf("unknown model handle %d", g.model)
			}
			v = tuple.Float(m.Predict(g.features))
		case "logist":
			examples := make([]ml.Example, 0, len(g.examples))
			for _, ex := range g.examples {
				examples = append(examples, *ex)
			}
			m, err := ml.TrainLogistic(examples, ml.LogisticOptions{})
			if err != nil {
				return out, err
			}
			v = tuple.Int(models.Put(m))
		case "linear":
			examples := make([]ml.Example, 0, len(g.examples))
			for _, ex := range g.examples {
				examples = append(examples, *ex)
			}
			m, err := ml.TrainLinear(examples)
			if err != nil {
				return out, err
			}
			v = tuple.Int(models.Put(m))
		default:
			return out, fmt.Errorf("unknown predict function %s", p.plan.Func)
		}
		head := make(tuple.Tuple, 0, headArity)
		head = append(head, p.keys[ks]...)
		head = append(head, v)
		out = out.Insert(head)
	}
	return out, nil
}
