package replica_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"logicblox/internal/core"
	"logicblox/internal/durable"
	"logicblox/internal/durable/faultfs"
	"logicblox/internal/obs"
	"logicblox/internal/replica"
)

// fakePrimary scripts /journal/tail responses per connection attempt and
// serves a fixed framed snapshot, so follower behavior under torn frames
// and truncation is testable without a real primary.
type fakePrimary struct {
	mu       sync.Mutex
	attempts int
	tail     func(attempt int, fromSeq uint64, w http.ResponseWriter)
	snapshot []byte // framed snapshot bytes, or nil for 404
}

func (p *fakePrimary) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/journal/tail":
		p.mu.Lock()
		p.attempts++
		n := p.attempts
		p.mu.Unlock()
		var from uint64
		fmt.Sscanf(r.URL.Query().Get("from_seq"), "%d", &from)
		p.tail(n, from, w)
	case "/replica/snapshot":
		if p.snapshot == nil {
			http.NotFound(w, r)
			return
		}
		w.Write(p.snapshot)
	case "/healthz":
		w.Write([]byte(`{"status":"ok"}`))
	default:
		http.NotFound(w, r)
	}
}

func (p *fakePrimary) tailAttempts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.attempts
}

func execRec(seq uint64, v int) core.CommitRecord {
	return core.CommitRecord{Seq: seq, Kind: "exec", Branch: core.DefaultBranch, Src: fmt.Sprintf("+p(%d).", v)}
}

func frameBytes(t *testing.T, frames ...durable.TailFrame) []byte {
	t.Helper()
	var buf []byte
	for _, f := range frames {
		var err error
		if buf, err = durable.AppendTailFrame(buf, f); err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

// snapshotBytes builds the framed snapshot of a database holding the
// given values at the given sequence.
func snapshotBytes(t *testing.T, seq uint64, values ...int) []byte {
	t.Helper()
	db := core.NewDatabase()
	for _, v := range values {
		ws, err := db.Workspace(core.DefaultBranch)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ws.Exec(fmt.Sprintf("+p(%d).", v))
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Commit(core.DefaultBranch, res.Workspace); err != nil {
			t.Fatal(err)
		}
	}
	db.AlignSeq(seq)
	var buf bytes.Buffer
	if _, err := db.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return durable.FrameSnapshotBytes(buf.Bytes())
}

func newTestFollower(t *testing.T, primaryURL string) *replica.Follower {
	t.Helper()
	store, err := durable.Open("fdata", durable.Options{
		FS: faultfs.New(), Generations: 2, CheckpointEvery: -1, CheckpointInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	db, err := store.Recover(func() (*core.Database, error) { return core.NewDatabase(), nil })
	if err != nil {
		t.Fatal(err)
	}
	fol, err := replica.New(replica.Config{
		PrimaryURL: primaryURL, Store: store, DB: db,
		StalenessBound: time.Minute, PollWindow: time.Second,
		Obs: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	fol.Start(context.Background())
	t.Cleanup(fol.Stop)
	return fol
}

func followerInts(t *testing.T, fol *replica.Follower) []int {
	t.Helper()
	ws, err := fol.DB().Workspace(core.DefaultBranch)
	if err != nil {
		t.Fatal(err)
	}
	var out []int
	for _, tup := range ws.Relation("p").Slice() {
		out = append(out, int(tup[0].AsInt()))
	}
	sort.Ints(out)
	return out
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A mid-crash primary can tear the final frame of a tail stream. The
// follower must apply everything before the tear, discard the partial
// record, and resume from the last good sequence — each record applied
// exactly once.
func TestFollowerToleratesTornFinalFrame(t *testing.T) {
	rec4 := frameBytes(t, durable.TailFrame{Type: durable.FrameRecord, Rec: execRec(4, 4)})
	torn := append(frameBytes(t,
		durable.TailFrame{Type: durable.FrameHeartbeat, Head: 5, Floor: 0},
		durable.TailFrame{Type: durable.FrameRecord, Rec: execRec(1, 1)},
		durable.TailFrame{Type: durable.FrameRecord, Rec: execRec(2, 2)},
		durable.TailFrame{Type: durable.FrameRecord, Rec: execRec(3, 3)},
	), rec4[:len(rec4)/2]...)
	rest := frameBytes(t,
		durable.TailFrame{Type: durable.FrameHeartbeat, Head: 5, Floor: 0},
		durable.TailFrame{Type: durable.FrameRecord, Rec: execRec(4, 4)},
		durable.TailFrame{Type: durable.FrameRecord, Rec: execRec(5, 5)},
		durable.TailFrame{Type: durable.FrameEOS},
	)
	idle := frameBytes(t,
		durable.TailFrame{Type: durable.FrameHeartbeat, Head: 5, Floor: 0},
		durable.TailFrame{Type: durable.FrameEOS},
	)
	p := &fakePrimary{
		snapshot: snapshotBytes(t, 0),
		tail: func(attempt int, from uint64, w http.ResponseWriter) {
			switch {
			case attempt == 1:
				// Frames 1-3 complete, then half of record 4's frame: the
				// primary died mid-send.
				w.Write(torn)
			case from == 3:
				w.Write(rest)
			default:
				w.Write(idle)
			}
		},
	}
	ts := httptest.NewServer(p)
	defer ts.Close()

	fol := newTestFollower(t, ts.URL)
	waitFor(t, "follower to apply all 5 records", func() bool { return fol.Status().AppliedSeq >= 5 })
	if got := followerInts(t, fol); !equalInts(got, []int{1, 2, 3, 4, 5}) {
		t.Fatalf("follower p = %v, want [1 2 3 4 5]", got)
	}
	// The second attempt resumed from seq 3 — the torn record 4 was
	// discarded, not applied, and nothing was applied twice.
	if fol.DB().Seq() != 5 {
		t.Fatalf("follower seq %d, want 5", fol.DB().Seq())
	}
}

// A 410 journal_truncated response sends the follower through a full
// snapshot resync, after which tailing resumes from the snapshot's
// sequence.
func TestFollowerResyncOnTruncation(t *testing.T) {
	after := frameBytes(t,
		durable.TailFrame{Type: durable.FrameHeartbeat, Head: 11, Floor: 10},
		durable.TailFrame{Type: durable.FrameRecord, Rec: execRec(11, 7)},
		durable.TailFrame{Type: durable.FrameEOS},
	)
	idle := frameBytes(t,
		durable.TailFrame{Type: durable.FrameHeartbeat, Head: 11, Floor: 10},
		durable.TailFrame{Type: durable.FrameEOS},
	)
	p := &fakePrimary{
		// The snapshot holds value 42 at seq 10 — past the truncation.
		snapshot: snapshotBytes(t, 10, 42),
		tail: func(attempt int, from uint64, w http.ResponseWriter) {
			if from < 10 {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusGone)
				w.Write([]byte(`{"error":"journal truncated","code":"journal_truncated"}`))
				return
			}
			if from == 10 {
				w.Write(after)
				return
			}
			w.Write(idle)
		},
	}
	ts := httptest.NewServer(p)
	defer ts.Close()

	fol := newTestFollower(t, ts.URL)
	waitFor(t, "resync + tail past truncation", func() bool { return fol.Status().AppliedSeq >= 11 })
	if got := followerInts(t, fol); !equalInts(got, []int{7, 42}) {
		t.Fatalf("follower p = %v, want [7 42]", got)
	}
	if st := fol.Status(); st.Resyncs < 1 {
		t.Fatalf("status reports %d resyncs, want >= 1", st.Resyncs)
	}
}

// Reconnect attempts back off: a dead primary must not be hammered at
// connection rate.
func TestFollowerBackoffOnDeadPrimary(t *testing.T) {
	p := &fakePrimary{snapshot: snapshotBytes(t, 0)}
	p.tail = func(attempt int, from uint64, w http.ResponseWriter) {
		w.WriteHeader(http.StatusInternalServerError)
	}
	ts := httptest.NewServer(p)
	defer ts.Close()

	fol := newTestFollower(t, ts.URL)
	time.Sleep(400 * time.Millisecond)
	fol.Stop()
	// 400ms with 50ms→5s exponential backoff allows at most ~6 attempts;
	// no backoff would make hundreds.
	if n := p.tailAttempts(); n > 10 {
		t.Fatalf("%d tail attempts in 400ms: backoff is not applied", n)
	}
	if st := fol.Status(); st.Connected || st.Stale {
		// Stale flips only after the bound (a minute here); connected must
		// be false with the primary erroring.
		t.Fatalf("unexpected status %+v", st)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
