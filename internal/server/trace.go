package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strings"
	"sync"
	"time"

	"logicblox/internal/obs"
)

// Request identity and the request-scoped trace ring. Every request gets
// an ID — taken from the client's X-Request-ID header when present, else
// generated — echoed back in the X-Request-ID response header, attached
// to error payloads, and used to key the finished request's span tree in
// a bounded in-memory ring served by GET /debug/trace/{id}. A slow
// request is thus fully explainable post hoc: the access-log line, the
// slow-query log entry, and the trace all carry the same ID.

// requestIDHeader is the request/response header carrying the ID.
const requestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds a client-supplied request ID.
const maxRequestIDLen = 128

// newRequestID returns a fresh 16-hex-char random request ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; degrade to a
		// constant rather than panic in the request path.
		return "00000000deadbeef"
	}
	return hex.EncodeToString(b[:])
}

// requestID extracts the client's X-Request-ID (trimmed, bounded) or
// generates one.
func requestID(r *http.Request) string {
	id := strings.TrimSpace(r.Header.Get(requestIDHeader))
	if id == "" {
		return newRequestID()
	}
	if len(id) > maxRequestIDLen {
		id = id[:maxRequestIDLen]
	}
	return id
}

// requestInfo is the per-request record threaded through the context: the
// middleware creates it, decode fills in the branch, acquire records the
// queue wait, and the deferred access-log line reads it all back. It is
// only touched from the request's own goroutine.
type requestInfo struct {
	id        string
	branch    string
	queueWait time.Duration
}

type requestInfoKey struct{}

func withRequestInfo(r *http.Request, info *requestInfo) *http.Request {
	return r.WithContext(context.WithValue(r.Context(), requestInfoKey{}, info))
}

func requestInfoFrom(ctx context.Context) *requestInfo {
	info, _ := ctx.Value(requestInfoKey{}).(*requestInfo)
	return info
}

// requestIDFrom returns the request ID carried by ctx, or "" outside a
// request scope.
func requestIDFrom(ctx context.Context) string {
	if info := requestInfoFrom(ctx); info != nil {
		return info.id
	}
	return ""
}

// traceEntry is one retained request trace.
type traceEntry struct {
	id       string
	endpoint string
	status   int
	span     *obs.Span
}

// traceStore keeps the last cap finished request span trees keyed by
// request ID. Unlike the obs registry's sampled trace ring, every request
// is retained here (bounded by cap), so /debug/trace/{id} answers for any
// recent request regardless of the sampling rate.
type traceStore struct {
	mu    sync.Mutex
	cap   int
	byID  map[string]*traceEntry
	order []string // arrival order, oldest first
}

func newTraceStore(cap int) *traceStore {
	return &traceStore{cap: cap, byID: make(map[string]*traceEntry, cap)}
}

func (t *traceStore) put(e *traceEntry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if old, ok := t.byID[e.id]; ok {
		// A reused client ID overwrites in place (latest wins).
		*old = *e
		return
	}
	for len(t.order) >= t.cap {
		delete(t.byID, t.order[0])
		t.order = t.order[1:]
	}
	t.byID[e.id] = e
	t.order = append(t.order, e.id)
}

func (t *traceStore) get(id string) (*traceEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.byID[id]
	return e, ok
}

// ids returns the retained request IDs, oldest first.
func (t *traceStore) ids() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.order...)
}

// inlineTrace returns the request's span tree so far when the request
// asked for it with ?trace=1 (nil otherwise). The handler is still
// inside the root span, so its duration is elapsed-so-far, but the
// transaction spans below it are complete.
func (s *Server) inlineTrace(r *http.Request) *obs.SpanSnapshot {
	if r.URL.Query().Get("trace") != "1" {
		return nil
	}
	sp := obs.SpanFromContext(r.Context())
	if sp == nil {
		return nil
	}
	snap := sp.Snapshot()
	return &snap
}

// handleTrace serves GET /debug/trace/{id}: the span tree of one recent
// request. GET /debug/trace (no ID) lists the retained IDs. Like
// /metrics it stays outside the worker pool and ignores drain mode.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErrorCode(w, http.StatusMethodNotAllowed, "bad_request", "GET required", requestID(r))
		return
	}
	id := strings.Trim(strings.TrimPrefix(r.URL.Path, "/debug/trace"), "/")
	if id == "" {
		writeJSON(w, http.StatusOK, TraceResponse{OK: true, IDs: s.traces.ids()})
		return
	}
	e, ok := s.traces.get(id)
	if !ok {
		writeErrorCode(w, http.StatusNotFound, "no_such_trace", "no retained trace for request id "+id, id)
		return
	}
	snap := e.span.Snapshot()
	writeJSON(w, http.StatusOK, TraceResponse{
		OK: true, RequestID: e.id, Endpoint: e.endpoint, Status: e.status, Trace: &snap,
	})
}
