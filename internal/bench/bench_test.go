package bench

import (
	"context"
	"net/http/httptest"
	"reflect"
	"runtime"
	"testing"
	"time"

	"logicblox/internal/core"
	"logicblox/internal/durable"
	"logicblox/internal/durable/faultfs"
	"logicblox/internal/obs"
	"logicblox/internal/replica"
	"logicblox/internal/server"
)

// TestGenOpsDeterministic: the op sequence is a pure function of the
// config — same seed replays the same workload, a different seed does
// not.
func TestGenOpsDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Ops: 500, Keys: 32, ReadFrac: 0.5, HotFrac: 0.8, Branches: 3, Rate: 200}
	a, b := GenOps(cfg), GenOps(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different op sequences")
	}
	cfg2 := cfg
	cfg2.Seed = 8
	if reflect.DeepEqual(a, GenOps(cfg2)) {
		t.Fatal("different seeds produced identical op sequences")
	}

	// The sequence respects the configured shape: both op kinds, all
	// branches, monotone arrival schedule, keys in range.
	kinds, branches := map[string]int{}, map[string]int{}
	var prev time.Duration
	for _, op := range a {
		kinds[op.Kind]++
		branches[op.Branch]++
		if op.Arrival < prev {
			t.Fatalf("arrival schedule not monotone: %v after %v", op.Arrival, prev)
		}
		prev = op.Arrival
		if op.Key < 0 || op.Key >= cfg.Keys {
			t.Fatalf("key %d out of range", op.Key)
		}
	}
	if kinds["exec"] == 0 || kinds["query"] == 0 {
		t.Fatalf("op mix missing a kind: %v", kinds)
	}
	for _, b := range []string{"main", "bench-1", "bench-2"} {
		if branches[b] == 0 {
			t.Fatalf("branch fan-out missing %s: %v", b, branches)
		}
	}
}

func TestPercentile(t *testing.T) {
	lats := make([]time.Duration, 100)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.95, 95 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1.0, 100 * time.Millisecond},
	} {
		if got := percentile(lats, tc.q); got != tc.want {
			t.Errorf("percentile(%.2f) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(empty) = %v", got)
	}
}

// TestBenchSmoke runs a small seeded closed-loop benchmark against an
// in-process server (this test backs `make bench-smoke`): the report
// must be well-formed, with zero 5xx answers, non-zero latency
// percentiles for both endpoints, and contention evidence (server-side
// optimistic retries and/or client-visible 409 conflicts) from the
// hot-key write skew.
func TestBenchSmoke(t *testing.T) {
	// On a single-CPU box GOMAXPROCS(1) serializes the sub-millisecond
	// transactions so writers never race; give the scheduler parallel Ps
	// so optimistic commits genuinely interleave.
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}
	reg := obs.NewRegistry()
	s := server.New(core.NewDatabase(), server.Config{Workers: 4, MaxRetries: 1, Obs: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	r := &Runner{
		Config: Config{
			BaseURL:     ts.URL,
			Seed:        42,
			Mode:        ModeClosed,
			Concurrency: 6,
			Ops:         300,
			Keys:        8,
			ReadFrac:    0.4,
			HotFrac:     0.9,
			Branches:    2,
			QueueSample: time.Millisecond,
		},
		Client: ts.Client(),
	}
	if err := r.Setup(); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if rep.TotalOps != 300 {
		t.Fatalf("TotalOps = %d, want 300", rep.TotalOps)
	}
	if rep.Errors5xx != 0 {
		t.Fatalf("Errors5xx = %d, statuses %v", rep.Errors5xx, rep.StatusCounts)
	}
	if rep.Throughput <= 0 || rep.ElapsedMs <= 0 {
		t.Fatalf("throughput/elapsed not positive: %+v", rep)
	}
	for _, ep := range []string{"exec", "query"} {
		st, ok := rep.Endpoints[ep]
		if !ok || st.Count == 0 {
			t.Fatalf("no %s samples: %v", ep, rep.Endpoints)
		}
		if st.P50Ms <= 0 || st.P95Ms <= 0 || st.P99Ms <= 0 {
			t.Fatalf("%s percentiles not positive: %+v", ep, st)
		}
		if st.P50Ms > st.P95Ms || st.P95Ms > st.P99Ms || st.P99Ms > st.MaxMs {
			t.Fatalf("%s percentiles not monotone: %+v", ep, st)
		}
	}
	// Six workers hammering eight keys (90% in the hot set) on two
	// branches with MaxRetries 1 must collide: some execs re-run
	// optimistically, some surface 409 after exhausting retries.
	if rep.Conflicts+rep.Retries == 0 {
		t.Fatalf("no contention evidence: %+v", rep)
	}
}

// TestBenchStream: with Stream set, query ops consume the NDJSON
// response (accounted under the query.stream endpoint with row/byte
// totals) and scan ops transfer full relations; the gauge sampler picks
// up the server's heap profile alongside queue depth.
func TestBenchStream(t *testing.T) {
	reg := obs.NewRegistry()
	s := server.New(core.NewDatabase(), server.Config{Workers: 4, Obs: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	r := &Runner{
		Config: Config{
			BaseURL:     ts.URL,
			Seed:        7,
			Mode:        ModeClosed,
			Concurrency: 4,
			Ops:         200,
			Keys:        16,
			ReadFrac:    0.6,
			Stream:      true,
			ScanFrac:    0.5,
			QueueSample: time.Millisecond,
		},
		Client: ts.Client(),
	}
	if err := r.Setup(); err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors5xx != 0 {
		t.Fatalf("Errors5xx = %d, statuses %v", rep.Errors5xx, rep.StatusCounts)
	}
	st, ok := rep.Endpoints["query.stream"]
	if !ok || st.Count == 0 {
		t.Fatalf("no query.stream samples: %v", rep.Endpoints)
	}
	if _, ok := rep.Endpoints["query"]; ok {
		t.Fatalf("streamed run still produced materialized query samples: %v", rep.Endpoints)
	}
	if rep.StreamBytes <= 0 {
		t.Fatalf("stream bytes = %d", rep.StreamBytes)
	}
	if got := reg.Counter("server.query.streamed").Value(); got != int64(st.Count) {
		t.Fatalf("server.query.streamed = %d, client saw %d", got, st.Count)
	}
	if len(rep.HeapInuse) == 0 || rep.HeapInuseMax <= 0 {
		t.Fatalf("no heap samples: len=%d max=%d", len(rep.HeapInuse), rep.HeapInuseMax)
	}

	// ScanFrac must not perturb the op sequence of an existing seed.
	plain := Config{Seed: 7, Ops: 200, Keys: 16, ReadFrac: 0.6}
	scanning := plain
	scanning.ScanFrac = 0.5
	a, b := GenOps(plain), GenOps(scanning)
	for i := range a {
		b[i].Scan = false
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("op %d diverged once ScanFrac was set: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestBenchReplicaRouting: with ReplicaURLs set, the read fraction is
// routed round-robin across the replicas (writes stay on the primary),
// the report carries per-target latency summaries, and the lag poller
// records each replica's observed max lag.
func TestBenchReplicaRouting(t *testing.T) {
	pst, err := durable.Open("data", durable.Options{
		FS: faultfs.New(), Generations: 2, CheckpointEvery: -1, CheckpointInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pst.Close() })
	pdb, err := pst.Recover(func() (*core.Database, error) { return core.NewDatabase(), nil })
	if err != nil {
		t.Fatal(err)
	}
	pdb.SetCommitHook(pst.LogCommit)
	ps := server.New(pdb, server.Config{
		Durable: pst, Workers: 4, TailWindow: 2 * time.Second, TailHeartbeat: 20 * time.Millisecond,
	})
	pts := httptest.NewServer(ps.Handler())
	defer pts.Close()

	var replicaURLs []string
	var fols []*replica.Follower
	for i := 0; i < 2; i++ {
		fst, err := durable.Open("fdata", durable.Options{
			FS: faultfs.New(), Generations: 2, CheckpointEvery: -1, CheckpointInterval: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { fst.Close() })
		fdb, err := fst.Recover(func() (*core.Database, error) { return core.NewDatabase(), nil })
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		fol, err := replica.New(replica.Config{
			PrimaryURL: pts.URL, Store: fst, DB: fdb,
			StalenessBound: time.Minute, PollWindow: time.Second, Obs: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		fol.Start(context.Background())
		t.Cleanup(fol.Stop)
		fs := server.New(fdb, server.Config{Follower: fol, Durable: fst, Workers: 4, Obs: reg})
		fts := httptest.NewServer(fs.Handler())
		t.Cleanup(fts.Close)
		replicaURLs = append(replicaURLs, fts.URL)
		fols = append(fols, fol)
	}

	r := &Runner{
		Config: Config{
			BaseURL:     pts.URL,
			Seed:        11,
			Mode:        ModeClosed,
			Concurrency: 4,
			Ops:         200,
			Keys:        16,
			ReadFrac:    0.6,
			QueueSample: 2 * time.Millisecond,
			ReplicaURLs: replicaURLs,
		},
		Client: pts.Client(),
	}
	if err := r.Setup(); err != nil {
		t.Fatal(err)
	}
	// Let both followers replay the schema install before reads land on
	// them, so no read 503s as never-caught-up stale.
	head := pst.Stats().LastSeq
	deadline := time.Now().Add(10 * time.Second)
	for _, fol := range fols {
		for fol.Status().AppliedSeq < head {
			if time.Now().After(deadline) {
				t.Fatal("follower did not catch up with bench schema")
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors5xx != 0 {
		t.Fatalf("Errors5xx = %d, statuses %v", rep.Errors5xx, rep.StatusCounts)
	}

	// Every target got ops: the primary exactly the writes, the replicas
	// the reads split round-robin.
	if len(rep.Targets) != 3 {
		t.Fatalf("targets = %v, want primary + 2 replicas", rep.Targets)
	}
	execCount := rep.Endpoints["exec"].Count
	queryCount := rep.Endpoints["query"].Count
	if execCount == 0 || queryCount == 0 {
		t.Fatalf("op mix missing a kind: %v", rep.Endpoints)
	}
	if got := rep.Targets[pts.URL].Count; got != execCount {
		t.Fatalf("primary received %d ops, want the %d writes only", got, execCount)
	}
	var replicaOps int
	for _, u := range replicaURLs {
		st := rep.Targets[u]
		if st.Count == 0 {
			t.Fatalf("replica %s received no reads: %v", u, rep.Targets)
		}
		if st.P50Ms <= 0 || st.P50Ms > st.MaxMs {
			t.Fatalf("replica %s percentiles malformed: %+v", u, st)
		}
		replicaOps += st.Count
	}
	if replicaOps != queryCount {
		t.Fatalf("replicas received %d ops, want all %d reads", replicaOps, queryCount)
	}
	// Round-robin balance: with 2 replicas the split is even within one.
	d := rep.Targets[replicaURLs[0]].Count - rep.Targets[replicaURLs[1]].Count
	if d < -1 || d > 1 {
		t.Fatalf("round-robin imbalance: %d vs %d reads",
			rep.Targets[replicaURLs[0]].Count, rep.Targets[replicaURLs[1]].Count)
	}

	// The lag poller sampled both replicas' /healthz.
	if len(rep.ReplicaLagMax) != 2 {
		t.Fatalf("replica lag map = %v, want both replicas sampled", rep.ReplicaLagMax)
	}
	if rep.ReplicaLagMaxSeq < 0 {
		t.Fatalf("ReplicaLagMaxSeq = %d", rep.ReplicaLagMaxSeq)
	}
}
