package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// bucketOf returns the power-of-two bucket index an observation lands in
// (mirroring Histogram.Observe's clamping).
func bucketOf(d time.Duration) int {
	ns := int64(d)
	if ns < 1 {
		ns = 1
	}
	b := 0
	for v := ns; v > 0; v >>= 1 {
		b++
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// TestQuantileWithinBucketBound pins the estimator's error to one
// power-of-two bucket boundary: for every quantile, the estimate must lie
// in the same bucket as the true (exact, sorted-sample) quantile — i.e.
// off by less than a factor of two — and inside [Min, Max].
func TestQuantileWithinBucketBound(t *testing.T) {
	distributions := map[string]func(r *rand.Rand) time.Duration{
		"uniform": func(r *rand.Rand) time.Duration {
			return time.Duration(1 + r.Int63n(int64(50*time.Millisecond)))
		},
		"exponential": func(r *rand.Rand) time.Duration {
			return time.Duration(r.ExpFloat64() * float64(2*time.Millisecond))
		},
		"bimodal": func(r *rand.Rand) time.Duration {
			if r.Intn(10) == 0 {
				return time.Duration(1+r.Int63n(100)) * time.Millisecond
			}
			return time.Duration(1+r.Int63n(1000)) * time.Microsecond
		},
	}
	for name, gen := range distributions {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			h := &Histogram{}
			samples := make([]time.Duration, 0, 5000)
			for i := 0; i < 5000; i++ {
				d := gen(r)
				if d < 1 {
					d = 1
				}
				h.Observe(d)
				samples = append(samples, d)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			snap := h.snapshot()
			for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999} {
				rank := int(math.Ceil(q * float64(len(samples))))
				exact := samples[rank-1]
				est := snap.Quantile(q)
				if est < snap.Min || est > snap.Max {
					t.Fatalf("q=%g: estimate %v outside [%v, %v]", q, est, snap.Min, snap.Max)
				}
				if bucketOf(est) != bucketOf(exact) {
					t.Errorf("q=%g: estimate %v (bucket %d) not in exact quantile %v's bucket %d",
						q, est, bucketOf(est), exact, bucketOf(exact))
				}
			}
		})
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}

	h := &Histogram{}
	h.Observe(10 * time.Millisecond)
	snap := h.snapshot()
	for _, q := range []float64{0, 0.5, 1} {
		if got := snap.Quantile(q); got != 10*time.Millisecond {
			t.Fatalf("single-sample Quantile(%g) = %v, want 10ms", q, got)
		}
	}

	// q outside [0,1] clamps to min/max.
	h.Observe(20 * time.Millisecond)
	snap = h.snapshot()
	if got := snap.Quantile(-1); got != snap.Min {
		t.Fatalf("Quantile(-1) = %v, want min %v", got, snap.Min)
	}
	if got := snap.Quantile(2); got != snap.Max {
		t.Fatalf("Quantile(2) = %v, want max %v", got, snap.Max)
	}
}
