package logicblox

import (
	"errors"
	"testing"
)

// TestPublicAPIQuickstart exercises the full public surface end to end:
// blocks, exec transactions, queries, branching, and solve.
func TestPublicAPIQuickstart(t *testing.T) {
	db := Open()
	ws, err := db.Workspace(DefaultBranch)
	if err != nil {
		t.Fatal(err)
	}
	ws, err = ws.AddBlock("schema", `
		sellingPrice[p] = v -> Product(p), float(v).
		buyingPrice[p] = v -> Product(p), float(v).
		profit[p] = s - b <- sellingPrice[p] = s, buyingPrice[p] = b.`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ws.Exec(`
		+Product("eis"). +Product("soda").
		+sellingPrice["eis"] = 3.0. +buyingPrice["eis"] = 1.0.
		+sellingPrice["soda"] = 2.0. +buyingPrice["soda"] = 1.5.`)
	if err != nil {
		t.Fatal(err)
	}
	ws = res.Workspace
	rows, err := ws.Query(`_(p, v) <- profit[p] = v, v > 1.0.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].AsString() != "eis" {
		t.Fatalf("rows = %v", rows)
	}
	if err := db.Commit(DefaultBranch, ws); err != nil {
		t.Fatal(err)
	}

	// Branch, modify, verify isolation.
	if err := db.Branch(DefaultBranch, "scenario"); err != nil {
		t.Fatal(err)
	}
	sw, _ := db.Workspace("scenario")
	res2, err := sw.Exec(`^sellingPrice["soda"] = 4.0.`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Commit("scenario", res2.Workspace); err != nil {
		t.Fatal(err)
	}
	mainWs, _ := db.Workspace(DefaultBranch)
	v, _ := mainWs.Relation("sellingPrice").FuncGet(Strings("soda"))
	if v.AsFloat() != 2.0 {
		t.Fatalf("branch leaked into main: %v", v)
	}
}

// TestPublicAPISolve runs the paper's assortment-planning LP through the
// public surface.
func TestPublicAPISolve(t *testing.T) {
	ws := NewWorkspace()
	ws, err := ws.AddBlock("plan", `
		spacePerProd[p] = v -> Product(p), float(v).
		profitPerProd[p] = v -> Product(p), float(v).
		maxShelf[] = v -> float(v).
		Stock[p] = v -> Product(p), float(v).
		totalShelf[] = u <- agg<<u = sum(z)>> Stock[p] = x, spacePerProd[p] = y, z = x * y.
		totalProfit[] = u <- agg<<u = sum(z)>> Stock[p] = x, profitPerProd[p] = y, z = x * y.
		Product(p) -> Stock[p] >= 0.0.
		totalShelf[] = u, maxShelf[] = v -> u <= v.
		lang:solve:variable(`+"`Stock"+`).
		lang:solve:max(`+"`totalProfit"+`).`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ws.Exec(`
		+Product("a"). +Product("b").
		+spacePerProd["a"] = 1.0. +spacePerProd["b"] = 2.0.
		+profitPerProd["a"] = 3.0. +profitPerProd["b"] = 4.0.
		+maxShelf[] = 10.0.`)
	if err != nil {
		t.Fatal(err)
	}
	solved, sol, err := res.Workspace.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Profit density per shelf unit: a = 3, b = 2 → all shelf to a: 10
	// units, profit 30.
	if sol.Objective < 29.99 || sol.Objective > 30.01 {
		t.Fatalf("objective = %v, want 30", sol.Objective)
	}
	va, _ := solved.Relation("Stock").FuncGet(Strings("a"))
	if va.AsFloat() < 9.99 {
		t.Fatalf("Stock[a] = %v, want 10", va)
	}
	// The derived views are re-materialized over the solution.
	tp, _ := solved.Relation("totalProfit").FuncGet(Tuple{})
	if tp.AsFloat() < 29.99 {
		t.Fatalf("totalProfit = %v", tp)
	}
}

// TestOpenWithOptions checks the functional-options form of Open: the
// configured root workspace is inherited by the whole lineage, and the
// typed error re-exports match with errors.Is.
func TestOpenWithOptions(t *testing.T) {
	reg := NewObsRegistry()
	db := Open(WithAdaptiveOptimizer(), WithObs(reg))
	ws, err := db.Workspace(DefaultBranch)
	if err != nil {
		t.Fatal(err)
	}
	if ws.PlanStore() == nil {
		t.Fatal("WithAdaptiveOptimizer did not attach a plan store")
	}
	ws, err = ws.AddBlock("tc", `
		path(x, y) <- edge(x, y).
		path(x, z) <- path(x, y), edge(y, z).`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ws.Exec(`+edge(1, 2). +edge(2, 3).`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(DefaultBranch, res.Workspace); err != nil {
		t.Fatal(err)
	}
	// Options are inherited: the committed version still has the store,
	// and the observer recorded the transaction.
	head, _ := db.Workspace(DefaultBranch)
	if head.PlanStore() == nil {
		t.Fatal("plan store not inherited across the transaction")
	}
	if reg.Snapshot().Counters["tx.exec.commit"] == 0 {
		t.Fatalf("observer saw no transactions: %v", reg.Snapshot().Counters)
	}

	if _, err := head.Exec(`+p(1`); !errors.Is(err, ErrParse) {
		t.Errorf("ErrParse not carried: %v", err)
	}
	if _, err := db.Workspace("nope"); !errors.Is(err, ErrNoSuchBranch) {
		t.Errorf("ErrNoSuchBranch not carried: %v", err)
	}
}
