// Package tuple defines the value and tuple model shared by every layer of
// the engine: typed scalar values with a total order, and tuples of values.
//
// LogiQL encourages sixth normal form, so predicates are narrow: a tuple is
// a short sequence of scalar values. Values are deliberately a small value
// type (no heap indirection for numbers) because join inner loops compare
// millions of them.
package tuple

import (
	"fmt"
	"math"
	"strconv"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The value kinds supported by the engine. The ordering of the constants
// defines the cross-kind collation order used by Compare.
const (
	KindNull Kind = iota // absence marker; sorts before everything
	KindBool
	KindInt
	KindFloat
	KindString
	KindEntity // user-defined entity type: an interned (type id, ordinal) pair
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindEntity:
		return "entity"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a scalar LogiQL value. The zero Value is the null value.
//
// Representation: numeric payloads live in num (ints as-is, floats via
// math.Float64bits, bools as 0/1, entities as typeID<<32|ordinal); strings
// live in str. Values are comparable with == only within the same kind and
// should normally be compared with Compare or Equal.
type Value struct {
	kind Kind
	num  uint64
	str  string
}

// Null is the null value (zero Value).
var Null = Value{}

// Bool returns a boolean value.
func Bool(b bool) Value {
	var n uint64
	if b {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, num: uint64(i)} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, num: math.Float64bits(f)} }

// String returns a string value.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Entity returns an entity value belonging to entity type typeID with the
// given ordinal (its index in the entity domain).
func Entity(typeID uint32, ordinal uint32) Value {
	return Value{kind: KindEntity, num: uint64(typeID)<<32 | uint64(ordinal)}
}

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean payload. It panics if v is not a bool.
func (v Value) AsBool() bool {
	v.mustBe(KindBool)
	return v.num != 0
}

// AsInt returns the integer payload. It panics if v is not an int.
func (v Value) AsInt() int64 {
	v.mustBe(KindInt)
	return int64(v.num)
}

// AsFloat returns the float payload. It panics if v is not a float.
func (v Value) AsFloat() float64 {
	v.mustBe(KindFloat)
	return math.Float64frombits(v.num)
}

// AsString returns the string payload. It panics if v is not a string.
func (v Value) AsString() string {
	v.mustBe(KindString)
	return v.str
}

// EntityType returns the entity type id. It panics if v is not an entity.
func (v Value) EntityType() uint32 {
	v.mustBe(KindEntity)
	return uint32(v.num >> 32)
}

// EntityOrdinal returns the entity ordinal. It panics if v is not an entity.
func (v Value) EntityOrdinal() uint32 {
	v.mustBe(KindEntity)
	return uint32(v.num)
}

// Numeric reports whether v is an int or float, and if so returns its
// value widened to float64.
func (v Value) Numeric() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(int64(v.num)), true
	case KindFloat:
		return math.Float64frombits(v.num), true
	default:
		return 0, false
	}
}

func (v Value) mustBe(k Kind) {
	if v.kind != k {
		panic(fmt.Sprintf("tuple: value is %s, not %s", v.kind, k))
	}
}

// Compare totally orders values. Values of different kinds order by kind;
// within a kind the natural order applies. This total order is what the
// trie iterators and leapfrog joins seek over.
func Compare(a, b Value) int {
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindNull:
		return 0
	case KindInt:
		ai, bi := int64(a.num), int64(b.num)
		switch {
		case ai < bi:
			return -1
		case ai > bi:
			return 1
		}
		return 0
	case KindFloat:
		af, bf := math.Float64frombits(a.num), math.Float64frombits(b.num)
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	case KindString:
		switch {
		case a.str < b.str:
			return -1
		case a.str > b.str:
			return 1
		}
		return 0
	default: // bool, entity: payload order
		switch {
		case a.num < b.num:
			return -1
		case a.num > b.num:
			return 1
		}
		return 0
	}
}

// Equal reports whether a and b are the same value.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Less reports whether a orders strictly before b.
func Less(a, b Value) bool { return Compare(a, b) < 0 }

// Hash returns a 64-bit hash of the value, used to derive treap priorities
// (the unique-representation property requires the priority to be a pure
// function of the key).
func (v Value) Hash() uint64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	h = fnv1aByte(h, byte(v.kind))
	switch v.kind {
	case KindString:
		for i := 0; i < len(v.str); i++ {
			h = fnv1aByte(h, v.str[i])
		}
	default:
		n := v.num
		for i := 0; i < 8; i++ {
			h = fnv1aByte(h, byte(n))
			n >>= 8
		}
	}
	// Finalize with a strong mix (splitmix64) so sequential ints do not
	// produce correlated treap priorities.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

func fnv1aByte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= 1099511628211
	return h
}

// String renders the value in LogiQL literal syntax.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindBool:
		if v.num != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(int64(v.num), 10)
	case KindFloat:
		return strconv.FormatFloat(math.Float64frombits(v.num), 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.str)
	case KindEntity:
		return fmt.Sprintf("@%d:%d", uint32(v.num>>32), uint32(v.num))
	default:
		return "?"
	}
}

// MinValue is a value ordering before every other value of any kind
// (it is the null value; used as the -infinity bound of intervals).
func MinValue() Value { return Value{} }

// MaxValue returns a sentinel ordering after every ordinary value.
func MaxValue() Value { return Value{kind: KindEntity, num: math.MaxUint64, str: ""} }

// Successor returns the smallest representable value strictly greater
// than v within its kind (dense virtual predicates use it to advance).
func Successor(v Value) Value {
	switch v.kind {
	case KindBool:
		if v.num == 0 {
			return Bool(true)
		}
		return Int(math.MinInt64) // past bools: the first int
	case KindInt:
		if int64(v.num) == math.MaxInt64 {
			return Value{kind: KindFloat, num: math.Float64bits(math.Inf(-1))}
		}
		return Int(int64(v.num) + 1)
	case KindFloat:
		f := math.Float64frombits(v.num)
		return Float(math.Nextafter(f, math.Inf(1)))
	case KindString:
		return String(v.str + "\x00")
	case KindEntity:
		return Value{kind: KindEntity, num: v.num + 1}
	default: // null: the first bool
		return Bool(false)
	}
}
