// Package solver implements the prescriptive-analytics substrate
// (paper §2.3.1): a from-scratch two-phase primal simplex LP solver, a
// branch-and-bound MIP solver on top of it, and the grounding machinery
// that translates LogiQL integrity constraints over free second-order
// predicate variables into solver input. The paper uses Gurobi/SCIP
// behind the same interface; any correct LP/MIP solver exercises the same
// grounding code path (see DESIGN.md substitutions).
package solver

import (
	"fmt"
	"math"

	"logicblox/internal/obs"
)

// ConstraintOp relates a linear expression to its right-hand side.
type ConstraintOp byte

// Constraint operators.
const (
	LE ConstraintOp = '<'
	GE ConstraintOp = '>'
	EQ ConstraintOp = '='
)

// LinConstraint is Σ Coeffs[i]·x_i  op  RHS.
type LinConstraint struct {
	Coeffs map[int]float64
	Op     ConstraintOp
	RHS    float64
}

// Problem is a linear program: maximize Objectiveᵀx subject to the
// constraints, with x_i ≥ 0 unless Free[i].
type Problem struct {
	NumVars     int
	Objective   []float64 // maximize
	Constraints []LinConstraint
	Free        []bool // free (unbounded below) variables, split internally
	Integer     []bool // integrality constraints (MIP only)
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return "unknown"
	}
}

// Solution is the result of a solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
}

const eps = 1e-9

// SolveLP maximizes the problem's objective with the two-phase primal
// simplex method on a dense tableau.
func SolveLP(p *Problem) (*Solution, error) {
	if p.NumVars == 0 {
		return &Solution{Status: Optimal}, nil
	}
	// Split free variables: x = x⁺ − x⁻.
	n := p.NumVars
	extra := 0
	negIdx := make([]int, n) // index of x⁻ for free vars, -1 otherwise
	for i := range negIdx {
		negIdx[i] = -1
	}
	if p.Free != nil {
		for i := 0; i < n; i++ {
			if p.Free[i] {
				negIdx[i] = n + extra
				extra++
			}
		}
	}
	cols := n + extra

	type row struct {
		a   []float64
		rhs float64
	}
	var rows []row
	addRow := func(coeffs map[int]float64, rhs float64, flip bool) row {
		r := row{a: make([]float64, cols), rhs: rhs}
		for i, c := range coeffs {
			if i < 0 || i >= n {
				continue
			}
			r.a[i] = c
			if negIdx[i] >= 0 {
				r.a[negIdx[i]] = -c
			}
		}
		if flip {
			for j := range r.a {
				r.a[j] = -r.a[j]
			}
			r.rhs = -r.rhs
		}
		return r
	}
	// Normalize all constraints to Σa·x ≤ b or equality; represent ≥ as
	// flipped ≤; keep equalities marked.
	type normRow struct {
		row
		eq bool
	}
	var norm []normRow
	for _, c := range p.Constraints {
		switch c.Op {
		case LE:
			norm = append(norm, normRow{addRow(c.Coeffs, c.RHS, false), false})
		case GE:
			norm = append(norm, normRow{addRow(c.Coeffs, c.RHS, true), false})
		case EQ:
			norm = append(norm, normRow{addRow(c.Coeffs, c.RHS, false), true})
		default:
			return nil, fmt.Errorf("solver: unknown constraint op %q", c.Op)
		}
	}
	_ = rows

	m := len(norm)
	// Tableau layout: structural vars (cols) + slack per inequality +
	// artificial per row needing one.
	slackOf := make([]int, m)
	numSlack := 0
	for i, r := range norm {
		if !r.eq {
			slackOf[i] = cols + numSlack
			numSlack++
		} else {
			slackOf[i] = -1
		}
	}
	artOf := make([]int, m)
	numArt := 0
	total := cols + numSlack
	// Ensure nonnegative RHS, then decide artificials.
	for i := range norm {
		if norm[i].rhs < 0 {
			for j := range norm[i].a {
				norm[i].a[j] = -norm[i].a[j]
			}
			norm[i].rhs = -norm[i].rhs
			if slackOf[i] >= 0 {
				// Slack coefficient becomes -1: need an artificial.
				slackOf[i] = -slackOf[i] - 2 // mark negative slack, encode
			}
		}
	}
	for i := range norm {
		if slackOf[i] < 0 { // equality or negative slack: artificial needed
			artOf[i] = total + numArt
			numArt++
		} else {
			artOf[i] = -1
		}
	}
	total += numArt

	// Build tableau: m rows × (total + 1) columns (last = RHS).
	t := make([][]float64, m)
	basis := make([]int, m)
	for i, r := range norm {
		t[i] = make([]float64, total+1)
		copy(t[i], r.a)
		t[i][total] = r.rhs
		switch {
		case slackOf[i] >= 0:
			t[i][slackOf[i]] = 1
			basis[i] = slackOf[i]
		default:
			if s := -slackOf[i] - 2; s >= 0 && !norm[i].eq {
				t[i][s] = -1 // surplus variable
			}
			t[i][artOf[i]] = 1
			basis[i] = artOf[i]
		}
	}

	// Phase 1: minimize sum of artificials. The working row holds the
	// phase-1 reduced costs z_j − c_j = (Σ artificial rows)_j for
	// structural columns; artificial columns are barred from re-entering.
	if numArt > 0 {
		obj := make([]float64, total+1)
		for i := range norm {
			if artOf[i] >= 0 {
				for j := 0; j <= total; j++ {
					obj[j] += t[i][j]
				}
			}
		}
		artForbidden := make([]bool, total)
		for i := range norm {
			if artOf[i] >= 0 {
				artForbidden[artOf[i]] = true
			}
		}
		if status := pivotLoop(t, basis, obj, total, artForbidden); status == Unbounded {
			return &Solution{Status: Infeasible}, nil
		}
		if obj[total] > eps {
			return &Solution{Status: Infeasible}, nil
		}
		// Drive remaining artificials out of the basis if possible.
		for i := range basis {
			if basis[i] >= total-numArt+0 && basis[i] >= cols+numSlack {
				for j := 0; j < cols+numSlack; j++ {
					if math.Abs(t[i][j]) > eps {
						pivot(t, basis, i, j)
						break
					}
				}
			}
		}
	}

	// Phase 2: maximize the real objective. The working row holds the
	// reduced costs c_j − z_j; a variable with a positive entry improves
	// the objective and may enter the basis.
	obj := make([]float64, total+1)
	for i := 0; i < n; i++ {
		obj[i] = objCoeff(p, i)
		if negIdx[i] >= 0 {
			obj[negIdx[i]] = -objCoeff(p, i)
		}
	}
	for i, b := range basis {
		if math.Abs(obj[b]) > eps {
			f := obj[b]
			for j := 0; j <= total; j++ {
				obj[j] -= f * t[i][j]
			}
		}
	}
	forbidden := make([]bool, total)
	for i := cols + numSlack; i < total; i++ {
		forbidden[i] = true // artificials must not re-enter
	}
	if status := pivotLoop(t, basis, obj, total, forbidden); status == Unbounded {
		return &Solution{Status: Unbounded}, nil
	}

	x := make([]float64, n)
	vals := make([]float64, total)
	for i, b := range basis {
		vals[b] = t[i][total]
	}
	for i := 0; i < n; i++ {
		x[i] = vals[i]
		if negIdx[i] >= 0 {
			x[i] -= vals[negIdx[i]]
		}
	}
	objV := 0.0
	for i := 0; i < n; i++ {
		objV += objCoeff(p, i) * x[i]
	}
	return &Solution{Status: Optimal, X: x, Objective: objV}, nil
}

func objCoeff(p *Problem, i int) float64 {
	if i < len(p.Objective) {
		return p.Objective[i]
	}
	return 0
}

// pivotLoop runs Bland's-rule simplex pivoting on a minimization tableau
// whose objective row is obj (minimizing obj means driving positive
// entries; we use the convention that we pivot while some obj[j] > eps).
func pivotLoop(t [][]float64, basis []int, obj []float64, total int, forbidden []bool) Status {
	m := len(t)
	pivots := 0
	defer func() { obs.Default().Counter("solver.simplex.pivots").Add(int64(pivots)) }()
	for iter := 0; iter < 20000; iter++ {
		// Entering column: Bland's rule (first positive reduced cost).
		col := -1
		for j := 0; j < total; j++ {
			if forbidden != nil && forbidden[j] {
				continue
			}
			if obj[j] > eps {
				col = j
				break
			}
		}
		if col < 0 {
			return Optimal
		}
		// Leaving row: minimum ratio, ties by smallest basis index.
		row := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][col] > eps {
				ratio := t[i][total] / t[i][col]
				if ratio < best-eps || (ratio < best+eps && (row < 0 || basis[i] < basis[row])) {
					best = ratio
					row = i
				}
			}
		}
		if row < 0 {
			return Unbounded
		}
		pivots++
		pivot(t, basis, row, col)
		f := obj[col]
		if math.Abs(f) > eps {
			for j := 0; j <= total; j++ {
				obj[j] -= f * t[row][j]
			}
		}
	}
	return Optimal // iteration cap: return current (near-optimal) basis
}

// pivot makes column col basic in row row.
func pivot(t [][]float64, basis []int, row, col int) {
	p := t[row][col]
	for j := range t[row] {
		t[row][j] /= p
	}
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if math.Abs(f) < eps {
			continue
		}
		for j := range t[i] {
			t[i][j] -= f * t[row][j]
		}
	}
	basis[row] = col
}
