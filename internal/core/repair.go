package core

import (
	"context"
	"fmt"

	"logicblox/internal/compiler"
	"logicblox/internal/lftj"
	"logicblox/internal/obs"
	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// Transaction repair (paper §3.4): an exec transaction run in recording
// mode keeps, per reactive stratum, the sensitivity intervals of every
// read (LFTJ iterator movements, membership probes, functional lookups)
// and the pure derivations of every rule. When the transaction loses the
// optimistic-commit CAS, the record is intersected against the winner's
// write set — the tuple-level diff between the loser's snapshot and the
// new head. Strata none of whose reads are affected replay from the
// record (their derivations are portable to the new head); only strata
// from the first affected one onward re-evaluate. The frame application,
// view re-derivation and constraint check then run against the new head
// exactly as a fresh execution would, so a repaired commit is
// indistinguishable from a serial re-execution.

// recordedStratum is the read/derivation record of one reactive stratum.
type recordedStratum struct {
	sens    *lftj.SensitivityIndex
	derived map[string]relation.Relation
}

// ExecRecord is the replayable record of an exec transaction produced by
// ExecRecorded: the snapshot it ran against, its compiled program, and
// the per-stratum read intervals and derivations. A record stays valid
// against any later head of the same logic — the write-set diff is always
// taken against the original snapshot — so repeated conflicts can
// re-attempt repair with the same record.
type ExecRecord struct {
	snapshot *Workspace
	src      string
	combined *compiler.Program
	strata   []recordedStratum
}

// Src returns the transaction source the record was built from.
func (rec *ExecRecord) Src() string { return rec.src }

// Snapshot returns the workspace version the transaction executed on.
func (rec *ExecRecord) Snapshot() *Workspace { return rec.snapshot }

// ReadSet returns the number of recorded read intervals per predicate,
// summed over the transaction's strata.
func (rec *ExecRecord) ReadSet() map[string]int {
	out := map[string]int{}
	for _, st := range rec.strata {
		for p, n := range st.sens.Counts() {
			out[p] += n
		}
	}
	return out
}

// RepairStats reports what a repair attempt did.
type RepairStats struct {
	// StrataTotal and StrataReused count the transaction's reactive
	// strata and how many replayed from the record without re-evaluation.
	StrataTotal, StrataReused int
	// ChangedTuples is the winner write-set size (tuples differing between
	// the loser's snapshot and the new head) probed against the recorded
	// read intervals; Intervals is the number of intervals probed into.
	ChangedTuples, Intervals int
}

// ExecRecorded runs an exec transaction like Exec, additionally
// returning the repair record for use on commit conflict. Recording
// disables parallel rule evaluation for the transaction and costs the
// sensitivity-interval bookkeeping, which is why it is opt-in.
func (ws *Workspace) ExecRecorded(src string) (*ExecResult, *ExecRecord, error) {
	return ws.ExecRecordedCtx(context.Background(), src)
}

// ExecRecordedCtx is ExecRecorded bounded by a context (see ExecCtx).
func (ws *Workspace) ExecRecordedCtx(rctx context.Context, src string) (*ExecResult, *ExecRecord, error) {
	sp, done := ws.txSpan(rctx, "exec")
	rec := &ExecRecord{snapshot: ws, src: src}
	run, err := ws.execReactive(rctx, src, sp, rec)
	if err != nil {
		done(err)
		return nil, nil, err
	}
	res, err := ws.applyReactive(rctx, run, sp)
	done(err)
	if err != nil {
		return nil, nil, err
	}
	return res, rec, nil
}

// Repair re-commits a conflicted transaction against newHead by
// re-deriving only what its reads actually touched. It returns
// ErrRepairNotApplicable (wrapped) when the record cannot be used — the
// logic or a predicate arity changed between snapshot and new head, or
// the winner's writes intersect the transaction's reads from the first
// stratum so nothing would be reused — and the caller falls back to full
// re-execution. On success the result is exactly what re-executing the
// transaction source on newHead would produce.
func (rec *ExecRecord) Repair(rctx context.Context, newHead *Workspace) (*ExecResult, RepairStats, error) {
	stats := RepairStats{StrataTotal: len(rec.strata)}
	reg := newHead.Observer()
	reg.Counter("core.repair.attempts").Inc()
	if newHead.prog != rec.snapshot.prog {
		reg.Counter("core.repair.fallback.schema").Inc()
		return nil, stats, fmt.Errorf("%w: logic changed between snapshot and new head", ErrRepairNotApplicable)
	}
	changes, ok := relationChanges(rec.snapshot, newHead)
	if !ok {
		reg.Counter("core.repair.fallback.schema").Inc()
		return nil, stats, fmt.Errorf("%w: predicate arity changed between snapshot and new head", ErrRepairNotApplicable)
	}
	for _, ts := range changes {
		stats.ChangedTuples += len(ts)
	}
	for _, st := range rec.strata {
		stats.Intervals += st.sens.Len()
	}
	reg.Counter("core.repair.changes_probed").Add(int64(stats.ChangedTuples))

	// Find the first stratum whose recorded reads intersect the winner's
	// writes: everything before it replays from the record, everything
	// from it on re-evaluates against the new head.
	k := len(rec.strata)
	for si, st := range rec.strata {
		if stratumAffected(st.sens, changes) {
			k = si
			break
		}
	}
	stats.StrataReused = k
	if k == 0 && len(rec.strata) > 0 {
		reg.Counter("core.repair.fallback.affected").Inc()
		return nil, stats, fmt.Errorf("%w: winner's writes intersect the transaction's reads from the first stratum", ErrRepairNotApplicable)
	}

	sp, done := newHead.txSpan(rctx, "repair")
	sp.SetAttr("strata_reused", int64(k))
	sp.SetAttr("strata_reevaluated", int64(len(rec.strata)-k))
	sp.SetAttr("changes_probed", int64(stats.ChangedTuples))
	res, err := rec.replay(rctx, newHead, k, sp)
	done(err)
	if err != nil {
		return nil, stats, err
	}
	reg.Counter("core.repair.repaired").Inc()
	reg.Counter("core.repair.strata_reused").Add(int64(k))
	reg.Counter("core.repair.strata_reevaluated").Add(int64(len(rec.strata) - k))
	return res, stats, nil
}

// replay runs the transaction against target: strata before k are
// replayed by installing their recorded derivations (seed ∪ derivations
// is exactly what evaluation would produce, since none of their reads
// are affected); strata from k on are re-evaluated. The shared apply
// phase then finishes the transaction as usual.
func (rec *ExecRecord) replay(rctx context.Context, target *Workspace, k int, sp *obs.Span) (*ExecResult, error) {
	ctx := target.seedExecCtx(rctx, rec.combined)
	run := &reactiveRun{combined: rec.combined, ctx: ctx, derived: map[string]relation.Relation{}}
	esp := sp.Child("eval.reactive")
	ctx.SetSpan(esp)
	for si := 0; si < k; si++ {
		for h, d := range rec.strata[si].derived {
			if ctx.Has(h) {
				ctx.Set(h, ctx.Relation(h).Union(d))
			} else {
				ctx.Set(h, d)
			}
		}
		mergeDerived(run.derived, rec.strata[si].derived)
	}
	for si := k; si < len(rec.combined.ReactiveStrata); si++ {
		ctx.StartDerivedCapture()
		err := ctx.EvalStratum(rec.combined.ReactiveStrata[si])
		capt := ctx.TakeDerivedCapture()
		if err != nil {
			esp.End()
			return nil, fmt.Errorf("exec repair: %w", err)
		}
		mergeDerived(run.derived, capt)
	}
	ctx.SetSpan(nil)
	esp.End()
	return target.applyReactive(rctx, run, sp)
}

// relationChanges diffs every predicate (base and derived — reactive
// bodies read views too) between two workspace versions, returning the
// changed tuples per name. ok=false when the versions disagree on a
// predicate's arity, in which case the record cannot be probed soundly
// and the caller falls back.
func relationChanges(a, b *Workspace) (map[string][]tuple.Tuple, bool) {
	ra, rb := a.relations(), b.relations()
	out := map[string][]tuple.Tuple{}
	for name, x := range ra {
		y, ok := rb[name]
		if !ok {
			y = relation.New(x.Arity())
		}
		if x.Arity() != y.Arity() {
			return nil, false
		}
		var ts []tuple.Tuple
		x.Diff(y,
			func(t tuple.Tuple) { ts = append(ts, t) },
			func(t tuple.Tuple) { ts = append(ts, t) })
		if len(ts) > 0 {
			out[name] = ts
		}
	}
	for name, y := range rb {
		if _, ok := ra[name]; ok {
			continue
		}
		var ts []tuple.Tuple
		y.ForEach(func(t tuple.Tuple) bool { ts = append(ts, t); return true })
		if len(ts) > 0 {
			out[name] = ts
		}
	}
	return out, true
}

// stratumAffected reports whether any changed tuple falls inside the
// stratum's recorded read intervals. Reads record under the name the
// rule body used, so both the plain and the @start decorations of a
// changed predicate are probed.
func stratumAffected(idx *lftj.SensitivityIndex, changes map[string][]tuple.Tuple) bool {
	for name, ts := range changes {
		for _, t := range ts {
			if idx.Affected(name, t) || idx.Affected(name+compiler.DecorAtStart, t) {
				return true
			}
		}
	}
	return false
}
