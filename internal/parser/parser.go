package parser

import (
	"fmt"
	"strconv"

	"logicblox/internal/ast"
	"logicblox/internal/tuple"
)

// Parse parses a LogiQL block (a sequence of clauses, each terminated by
// '.') into an AST program.
func Parse(src string) (*ast.Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &ast.Program{}
	for !p.at(tokEOF, "") {
		c, err := p.parseClause()
		if err != nil {
			return nil, err
		}
		prog.Clauses = append(prog.Clauses, c)
	}
	return prog, nil
}

// ParseQuery parses the body of a query transaction: a program whose
// single rule derives the designated answer predicate "_".
func ParseQuery(src string) (*ast.Program, error) {
	return Parse(src)
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) tok() token { return p.toks[p.pos] }
func (p *parser) look(i int) token {
	if p.pos+i >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+i]
}

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.tok()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) atPunct(text string) bool { return p.at(tokPunct, text) }

func (p *parser) advance() token {
	t := p.tok()
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = map[tokenKind]string{tokIdent: "identifier", tokInt: "integer",
				tokFloat: "float", tokString: "string"}[kind]
		}
		return token{}, p.errorf("expected %s, found %s", want, p.tok())
	}
	return p.advance(), nil
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.tok()
	return fmt.Errorf("%d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

// parseClause dispatches on the clause form: directive, rule, fact, or
// constraint.
func (p *parser) parseClause() (ast.Clause, error) {
	if p.at(tokIdent, "lang") && p.look(1).kind == tokPunct && p.look(1).text == ":" {
		return p.parseDirective()
	}
	lits, err := p.parseLiteralList()
	if err != nil {
		return nil, err
	}
	switch {
	case p.atPunct("<-"):
		p.advance()
		heads, err := literalsToAtoms(lits)
		if err != nil {
			return nil, p.errorf("invalid rule head: %v", err)
		}
		return p.parseRuleTail(heads)
	case p.atPunct("->"):
		p.advance()
		head, err := p.parseLiteralList()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "."); err != nil {
			return nil, err
		}
		return &ast.Constraint{Body: lits, Head: head}, nil
	case p.atPunct("."):
		p.advance()
		heads, err := literalsToAtoms(lits)
		if err != nil {
			return nil, p.errorf("invalid fact: %v", err)
		}
		return &ast.Rule{Heads: heads}, nil
	default:
		return nil, p.errorf("expected '<-', '->' or '.', found %s", p.tok())
	}
}

func literalsToAtoms(lits []*ast.Literal) ([]*ast.Atom, error) {
	atoms := make([]*ast.Atom, len(lits))
	for i, l := range lits {
		if l.Atom == nil || l.Negated {
			return nil, fmt.Errorf("%s is not a plain atom", l)
		}
		atoms[i] = l.Atom
	}
	return atoms, nil
}

// parseRuleTail parses everything after "<-": optional agg/predict spec
// then the body literals and the terminating '.'.
func (p *parser) parseRuleTail(heads []*ast.Atom) (*ast.Rule, error) {
	r := &ast.Rule{Heads: heads}
	if p.at(tokIdent, "agg") && p.look(1).text == "<<" {
		agg, err := p.parseAggSpec()
		if err != nil {
			return nil, err
		}
		r.Agg = agg
	} else if p.at(tokIdent, "predict") && p.look(1).text == "<<" {
		pr, err := p.parsePredictSpec()
		if err != nil {
			return nil, err
		}
		r.Pred = pr
	}
	if p.atPunct(".") {
		p.advance()
		return r, nil
	}
	body, err := p.parseLiteralList()
	if err != nil {
		return nil, err
	}
	r.Body = body
	if _, err := p.expect(tokPunct, "."); err != nil {
		return nil, err
	}
	return r, nil
}

// parseAggSpec parses agg<<u = fn(z)>> (z optional for count).
func (p *parser) parseAggSpec() (*ast.Aggregation, error) {
	p.advance() // agg
	p.advance() // <<
	res, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "="); err != nil {
		return nil, err
	}
	fn, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	arg := ""
	if p.at(tokIdent, "") {
		arg = p.advance().text
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ">>"); err != nil {
		return nil, err
	}
	return &ast.Aggregation{Result: res.text, Func: fn.text, Arg: arg}, nil
}

// parsePredictSpec parses predict<<m = fn(v|f)>>.
func (p *parser) parsePredictSpec() (*ast.Predict, error) {
	p.advance() // predict
	p.advance() // <<
	res, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "="); err != nil {
		return nil, err
	}
	fn, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	val, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "|"); err != nil {
		return nil, err
	}
	feat, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ">>"); err != nil {
		return nil, err
	}
	return &ast.Predict{Result: res.text, Func: fn.text, Value: val.text, Feature: feat.text}, nil
}

// parseDirective parses lang:a:b(`P, `Q).
func (p *parser) parseDirective() (ast.Clause, error) {
	d := &ast.Directive{}
	id, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	d.Path = append(d.Path, id.text)
	for p.atPunct(":") {
		p.advance()
		id, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		d.Path = append(d.Path, id.text)
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokPunct, "`"); err != nil {
			return nil, err
		}
		id, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		d.Args = append(d.Args, id.text)
		if !p.atPunct(",") {
			break
		}
		p.advance()
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "."); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) parseLiteralList() ([]*ast.Literal, error) {
	var lits []*ast.Literal
	for {
		l, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		lits = append(lits, l)
		if !p.atPunct(",") {
			return lits, nil
		}
		p.advance()
	}
}

// parseLiteral parses a negated atom, an atom, or a comparison.
func (p *parser) parseLiteral() (*ast.Literal, error) {
	if p.atPunct("!") {
		p.advance()
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return &ast.Literal{Negated: true, Atom: a}, nil
	}
	if p.startsAtom() {
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return &ast.Literal{Atom: a}, nil
	}
	// Otherwise a comparison literal: term cmpOp term.
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	opTok := p.tok()
	switch opTok.text {
	case "=", "!=", "<", "<=", ">", ">=":
		p.advance()
	default:
		return nil, p.errorf("expected comparison operator, found %s", opTok)
	}
	r, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return &ast.Literal{Cmp: &ast.Comparison{Op: ast.CmpOp(opTok.text), L: l, R: r}}, nil
}

// startsAtom reports whether the upcoming tokens begin a predicate atom
// rather than a comparison term. Functional applications Pred[..] are
// terms unless the whole literal is Pred[..] = term, which parseLiteral
// resolves via the functional-atom rule below: a leading Pred[..]
// followed by '=' parses as an atom only at the literal level, so here we
// treat '[' starts as atoms and let parseAtom hand back functional atoms;
// comparisons over functional applications (Stock[p] >= min) are
// recovered by parseAtom's caller via atomToComparison when the operator
// is not '='.
func (p *parser) startsAtom() bool {
	i := 0
	// Delta prefix.
	if t := p.look(i); t.kind == tokPunct && (t.text == "+" || t.text == "-" || t.text == "^") {
		i++
	}
	t := p.look(i)
	if t.kind == tokPunct && t.text == "_" {
		// The answer predicate "_(args)".
		return p.look(i+1).text == "("
	}
	if t.kind != tokIdent {
		return false
	}
	i++
	if p.look(i).text == "@" {
		// Skip the version suffix; atom-ness depends on what follows it,
		// exactly as in the unversioned case.
		i += 2
	}
	if p.look(i).text == "(" {
		return true
	}
	if p.look(i).text == "[" {
		// Could be a functional atom R[k]=v or a functional application in
		// a comparison; scan to the matching ']' and inspect what follows.
		depth := 0
		for j := i; ; j++ {
			tj := p.look(j)
			if tj.kind == tokEOF {
				return false
			}
			if tj.kind == tokPunct {
				switch tj.text {
				case "[":
					depth++
				case "]":
					depth--
					if depth == 0 {
						nxt := p.look(j + 1)
						if nxt.kind == tokPunct && nxt.text == "=" {
							return true
						}
						if nxt.kind == tokPunct && nxt.text == "(" {
							return true // width-annotated type atom float[64](v)
						}
						return false
					}
				}
			}
		}
	}
	return false
}

// parseAtom parses a predicate atom in relational or functional shape.
func (p *parser) parseAtom() (*ast.Atom, error) {
	a := &ast.Atom{}
	if t := p.tok(); t.kind == tokPunct {
		switch t.text {
		case "+":
			a.Delta = ast.DeltaPlus
			p.advance()
		case "-":
			a.Delta = ast.DeltaMinus
			p.advance()
		case "^":
			a.Delta = ast.DeltaHat
			p.advance()
		}
	}
	if p.atPunct("_") {
		p.advance()
		a.Pred = "_"
	} else {
		id, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		a.Pred = id.text
	}
	if p.atPunct("@") {
		p.advance()
		id, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if id.text != "start" {
			return nil, p.errorf("unknown predicate version @%s (only @start is supported)", id.text)
		}
		a.AtStart = true
	}
	switch {
	case p.atPunct("("):
		p.advance()
		if !p.atPunct(")") {
			args, err := p.parseTermList()
			if err != nil {
				return nil, err
			}
			a.Args = args
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
	case p.atPunct("["):
		p.advance()
		if !p.atPunct("]") {
			args, err := p.parseTermList()
			if err != nil {
				return nil, err
			}
			a.Args = args
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
		// Width-annotated type atom, e.g. float[64](v): the bracket list is
		// a width, the parenthesized list holds the real arguments.
		if p.atPunct("(") {
			p.advance()
			args, err := p.parseTermList()
			if err != nil {
				return nil, err
			}
			a.Args = args
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return a, nil
		}
		if _, err := p.expect(tokPunct, "="); err != nil {
			return nil, err
		}
		v, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		a.Value = v
	default:
		return nil, p.errorf("expected '(' or '[' after predicate %s", a.Pred)
	}
	return a, nil
}

func (p *parser) parseTermList() ([]ast.Term, error) {
	var ts []ast.Term
	for {
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		ts = append(ts, t)
		if !p.atPunct(",") {
			return ts, nil
		}
		p.advance()
	}
}

// parseTerm parses an arithmetic expression with the usual precedence.
func (p *parser) parseTerm() (ast.Term, error) {
	return p.parseAdditive()
}

func (p *parser) parseAdditive() (ast.Term, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.atPunct("+") || p.atPunct("-") {
		op := p.advance().text[0]
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = ast.Arith{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (ast.Term, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.atPunct("*") || p.atPunct("/") {
		op := p.advance().text[0]
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = ast.Arith{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parsePrimary() (ast.Term, error) {
	t := p.tok()
	switch t.kind {
	case tokInt:
		p.advance()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer %s", t.text)
		}
		return ast.Const{Val: tuple.Int(v)}, nil
	case tokFloat:
		p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errorf("bad float %s", t.text)
		}
		return ast.Const{Val: tuple.Float(v)}, nil
	case tokString:
		p.advance()
		return ast.Const{Val: tuple.String(t.text)}, nil
	case tokIdent:
		switch t.text {
		case "true":
			p.advance()
			return ast.Const{Val: tuple.Bool(true)}, nil
		case "false":
			p.advance()
			return ast.Const{Val: tuple.Bool(false)}, nil
		}
		p.advance()
		atStart := false
		if p.atPunct("@") && p.look(1).kind == tokIdent && p.look(1).text == "start" {
			p.advance()
			p.advance()
			atStart = true
		}
		if p.atPunct("[") {
			p.advance()
			var args []ast.Term
			if !p.atPunct("]") {
				var err error
				args, err = p.parseTermList()
				if err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			return ast.FuncApp{Pred: t.text, AtStart: atStart, Args: args}, nil
		}
		if atStart {
			return nil, p.errorf("@start requires a functional application %s@start[...]", t.text)
		}
		return ast.Var{Name: t.text}, nil
	case tokPunct:
		switch t.text {
		case "_":
			p.advance()
			return ast.Wildcard{}, nil
		case "(":
			p.advance()
			inner, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return inner, nil
		case "-":
			p.advance()
			inner, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			if c, ok := inner.(ast.Const); ok {
				switch c.Val.Kind() {
				case tuple.KindInt:
					return ast.Const{Val: tuple.Int(-c.Val.AsInt())}, nil
				case tuple.KindFloat:
					return ast.Const{Val: tuple.Float(-c.Val.AsFloat())}, nil
				}
			}
			return ast.Arith{Op: '-', L: ast.Const{Val: tuple.Int(0)}, R: inner}, nil
		}
	}
	return nil, p.errorf("expected a term, found %s", t)
}
