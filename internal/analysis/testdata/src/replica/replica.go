// Package replica is a ctxloop-analyzer fixture: the follower's tail
// and retry loops run for the life of the process, so its name is in
// the checked set — an unbounded loop here that never polls a context
// would keep tailing a dead primary after Stop.
package replica

import "time"

type ctx struct{}

func (c *ctx) Err() error            { return nil }
func (c *ctx) Done() <-chan struct{} { return nil }

func badTailLoop(connect func() error) {
	for { // want: never polls a context
		if err := connect(); err != nil {
			continue
		}
	}
}

func badDrain(fetch func() []int) {
	// The catch-up drain shape: pending is refilled by the body, so the
	// loop runs as long as the primary keeps producing.
	pending := fetch()
	for len(pending) > 0 { // want: never polls a context
		pending = fetch()
	}
}

func okTailLoop(c *ctx, connect func() error) {
	for c.Err() == nil {
		if err := connect(); err != nil {
			continue
		}
	}
}

func okBackoffSelect(c *ctx, try func() bool) {
	backoff := 50 * time.Millisecond
	for !try() {
		select {
		case <-c.Done():
			return
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}

func okProbeTicker(c *ctx, probe func() bool, tick <-chan time.Time) {
	for {
		select {
		case <-c.Done():
			return
		case <-tick:
			probe()
		}
	}
}
