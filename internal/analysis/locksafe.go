package analysis

// locksafe enforces the commit path's lock discipline (paper §3.3–3.4)
// with a forward dataflow over the CFG:
//
//  1. Release-on-all-paths: every sync.Mutex/RWMutex acquisition must be
//     released on every path to every function exit (return, explicit
//     panic, or fall-off-end), either directly or by a pending defer.
//  2. Double-lock: re-acquiring a lock that may already be held by the
//     same function (same receiver path) is a self-deadlock.
//  3. Lock order: acquisitions are summarized per function (transitively
//     through static calls, and through values of named function types
//     such as core.CommitHook and durable.SaveFunc for the indirect
//     commit-hook path) into a repo-wide type-level lock-order graph;
//     a cycle in that graph is a potential deadlock between concurrent
//     transactions and is reported once per cycle at Finish.
//
// Known limits (see docs/analysis.md): calls that may panic are not
// modeled as exits (defers still count as releases, so defer-based
// release is panic-safe and the analyzer never demands more than that);
// distinct instances of the same type share one node in the order graph,
// so type-level self-edges are deliberately not reported (the
// intraprocedural double-lock check covers the same-instance case).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LocksafeAnalyzer is the CFG-based lock-discipline check.
var LocksafeAnalyzer = &Analyzer{
	Name:   "locksafe",
	Doc:    "flag locks not released on all paths, double-locks, and lock-order cycles",
	Run:    runLocksafe,
	Finish: finishLocksafe,
}

// lockObj identifies one lock at a call site.
type lockObj struct {
	local   string // intraprocedural identity: root object + selector path
	display string // source spelling, e.g. "s.mu"
	global  string // type-level identity "pkg/path.Type.field" ("" if function-local)
}

// lsEdge is one lock-order edge: from is held when to is acquired.
type lsEdge struct{ from, to string }

// lsPending is an indirect call through a named function type made while
// holding locks; resolved against address-taken functions at Finish.
type lsPending struct {
	helds []string
	sig   string
	pos   token.Pos
}

// Shared-state accessors. Everything locksafe accumulates across
// packages lives in Pass.Shared under these keys.
func lsSummaries(p *Pass) map[string]map[string]token.Pos {
	m, ok := p.Shared["summaries"].(map[string]map[string]token.Pos)
	if !ok {
		m = map[string]map[string]token.Pos{}
		p.Shared["summaries"] = m
	}
	return m
}

func lsEdges(p *Pass) map[lsEdge]token.Pos {
	m, ok := p.Shared["edges"].(map[lsEdge]token.Pos)
	if !ok {
		m = map[lsEdge]token.Pos{}
		p.Shared["edges"] = m
	}
	return m
}

func lsAddrTaken(p *Pass) map[string]map[string]bool {
	m, ok := p.Shared["addrTaken"].(map[string]map[string]bool)
	if !ok {
		m = map[string]map[string]bool{}
		p.Shared["addrTaken"] = m
	}
	return m
}

func lsPendings(p *Pass) *[]lsPending {
	s, ok := p.Shared["pending"].(*[]lsPending)
	if !ok {
		s = &[]lsPending{}
		p.Shared["pending"] = s
	}
	return s
}

// mutexOp classifies call as a sync.Mutex/RWMutex operation and resolves
// the lock it targets. op is "Lock", "Unlock", "RLock" or "RUnlock".
func mutexOp(pass *Pass, call *ast.CallExpr) (op string, lock lockObj, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", lockObj{}, false
	}
	fn, isFn := pass.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", lockObj{}, false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", lockObj{}, false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", lockObj{}, false
	}
	recvNamed := namedOf(sig.Recv().Type())
	if recvNamed == nil {
		return "", lockObj{}, false
	}
	if n := recvNamed.Obj().Name(); n != "Mutex" && n != "RWMutex" {
		return "", lockObj{}, false
	}
	lock, ok = resolveLock(pass, sel.X)
	if !ok {
		return "", lockObj{}, false
	}
	return fn.Name(), lock, true
}

// resolveLock derives the identity of the lock denoted by recv — the
// expression a Lock/Unlock method is called on. Selector chains rooted
// at an identifier resolve fully; anything else (an index expression, a
// call result) is untrackable and skipped.
func resolveLock(pass *Pass, recv ast.Expr) (lockObj, bool) {
	expr := ast.Unparen(recv)
	var parts []string
	for {
		if sel, ok := expr.(*ast.SelectorExpr); ok {
			parts = append([]string{sel.Sel.Name}, parts...)
			expr = ast.Unparen(sel.X)
			continue
		}
		break
	}
	root, ok := expr.(*ast.Ident)
	if !ok {
		return lockObj{}, false
	}
	obj := pass.Info.Uses[root]
	if obj == nil {
		obj = pass.Info.Defs[root]
	}
	if obj == nil {
		return lockObj{}, false
	}
	display := root.Name
	if len(parts) > 0 {
		display += "." + strings.Join(parts, ".")
	}
	lo := lockObj{
		local:   fmt.Sprintf("%p.%s", obj, strings.Join(parts, ".")),
		display: display,
	}
	// Type-level identity: the named struct owning the final mutex field.
	if t := pass.Info.Types[recv]; t.Type != nil {
		if named := namedOf(t.Type); named != nil && named.Obj().Pkg() != nil &&
			(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex") && named.Obj().Pkg().Path() == "sync" {
			// recv is the mutex itself; find its owner.
			switch {
			case len(parts) > 0:
				// owner = type of the expression before the final field.
				ownerExpr := recv
				if sel, ok := ast.Unparen(recv).(*ast.SelectorExpr); ok {
					ownerExpr = sel.X
					if ownerNamed := namedOfExprType(pass, ownerExpr); ownerNamed != nil {
						lo.global = typeKey(ownerNamed) + "." + sel.Sel.Name
					}
				}
				_ = ownerExpr
			case obj.Parent() == pass.Pkg.Scope():
				// A package-level mutex variable.
				lo.global = pass.Pkg.Path() + "." + root.Name
			}
		} else if named != nil {
			// recv is a struct embedding the mutex; name the embedded field.
			if st, ok := named.Underlying().(*types.Struct); ok {
				for i := 0; i < st.NumFields(); i++ {
					if fn := namedOf(st.Field(i).Type()); fn != nil && fn.Obj().Pkg() != nil &&
						fn.Obj().Pkg().Path() == "sync" && (fn.Obj().Name() == "Mutex" || fn.Obj().Name() == "RWMutex") {
						lo.global = typeKey(named) + "." + st.Field(i).Name()
						break
					}
				}
			}
		}
	}
	return lo, true
}

func namedOfExprType(pass *Pass, e ast.Expr) *types.Named {
	if t := pass.Info.Types[e]; t.Type != nil {
		return namedOf(t.Type)
	}
	return nil
}

// typeKey is the repo-wide identity of a named type.
func typeKey(n *types.Named) string {
	if n.Obj().Pkg() == nil {
		return n.Obj().Name()
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

// shortToken trims the module path off a type-level lock token for
// human-readable messages: "logicblox/internal/core.Database.mu" →
// "core.Database.mu".
func shortToken(tok string) string {
	if i := strings.LastIndex(tok, "/"); i >= 0 {
		return tok[i+1:]
	}
	return tok
}

// funcKey canonically names a function across packages; generic
// instantiations share their origin's key.
func funcKey(fn *types.Func) string { return fn.Origin().FullName() }

// staticCallee resolves a call to the *types.Func it statically invokes,
// or nil for indirect calls, builtins and conversions.
func staticCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// namedFuncSig returns the printed signature of call's callee when the
// callee expression has a *named* function type (an indirect call
// through core.CommitHook, durable.SaveFunc, ...), else "".
func namedFuncSig(pass *Pass, call *ast.CallExpr) string {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return ""
	}
	t := types.Unalias(tv.Type)
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	sig, ok := named.Underlying().(*types.Signature)
	if !ok {
		return ""
	}
	return sigKey(sig)
}

// sigKey canonicalizes a signature to its parameter and result types —
// names stripped, so `func(x int)` unifies with `type Hook func(int)`.
func sigKey(sig *types.Signature) string {
	var sb strings.Builder
	sb.WriteString("func(")
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(types.TypeString(sig.Params().At(i).Type(), nil))
	}
	if sig.Variadic() {
		sb.WriteString("...")
	}
	sb.WriteString(")(")
	for i := 0; i < sig.Results().Len(); i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(types.TypeString(sig.Results().At(i).Type(), nil))
	}
	sb.WriteString(")")
	return sb.String()
}

// ---- lock state lattice ----

// lsState is the may-held lock state at a program point: for each lock
// (intraprocedural identity), the modes held with their first acquire
// position, and the modes covered by a pending deferred release.
type lsState struct {
	held     map[string]map[string]token.Pos
	deferred map[string]map[string]bool
}

func newLsState() *lsState {
	return &lsState{held: map[string]map[string]token.Pos{}, deferred: map[string]map[string]bool{}}
}

func (s *lsState) clone() *lsState {
	c := newLsState()
	for k, modes := range s.held {
		m := map[string]token.Pos{}
		for mode, pos := range modes {
			m[mode] = pos
		}
		c.held[k] = m
	}
	for k, modes := range s.deferred {
		m := map[string]bool{}
		for mode := range modes {
			m[mode] = true
		}
		c.deferred[k] = m
	}
	return c
}

func (s *lsState) joinInto(src *lsState) bool {
	changed := false
	for k, modes := range src.held {
		dst := s.held[k]
		if dst == nil {
			dst = map[string]token.Pos{}
			s.held[k] = dst
		}
		for mode, pos := range modes {
			if old, ok := dst[mode]; !ok || pos < old {
				if !ok || pos < old {
					dst[mode] = pos
					changed = true
				}
			}
		}
	}
	for k, modes := range src.deferred {
		dst := s.deferred[k]
		if dst == nil {
			dst = map[string]bool{}
			s.deferred[k] = dst
		}
		for mode := range modes {
			if !dst[mode] {
				dst[mode] = true
				changed = true
			}
		}
	}
	return changed
}

// lsUnit carries the per-unit context of one locksafe dataflow.
type lsUnit struct {
	pass      *Pass
	locks     map[string]lockObj // local key -> identity
	reporting bool
	reported  map[string]bool
	summaries map[string]map[string]token.Pos
	edges     map[lsEdge]token.Pos
	pending   *[]lsPending
}

func (u *lsUnit) reportOnce(key string, pos token.Pos, format string, args ...any) {
	if u.reported[key] {
		return
	}
	u.reported[key] = true
	u.pass.Reportf(pos, format, args...)
}

// transfer pushes state through one block's nodes.
func (u *lsUnit) transfer(b *Block, st *lsState) *lsState {
	for _, node := range b.Nodes {
		u.transferNode(node, st)
	}
	return st
}

func (u *lsUnit) transferNode(node ast.Node, st *lsState) {
	if d, ok := node.(*ast.DeferStmt); ok {
		u.transferDefer(d, st)
		return
	}
	inspectShallow(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		u.transferCall(call, st)
		return true
	})
}

// transferDefer registers the releases a defer guarantees: a direct
// deferred Unlock, or any Unlock inside a deferred function literal.
func (u *lsUnit) transferDefer(d *ast.DeferStmt, st *lsState) {
	record := func(call *ast.CallExpr) {
		op, lock, ok := mutexOp(u.pass, call)
		if !ok {
			return
		}
		var mode string
		switch op {
		case "Unlock":
			mode = "w"
		case "RUnlock":
			mode = "r"
		default:
			return
		}
		u.locks[lock.local] = lock
		if st.deferred[lock.local] == nil {
			st.deferred[lock.local] = map[string]bool{}
		}
		st.deferred[lock.local][mode] = true
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				record(call)
			}
			return true
		})
		return
	}
	record(d.Call)
}

func (u *lsUnit) transferCall(call *ast.CallExpr, st *lsState) {
	if op, lock, ok := mutexOp(u.pass, call); ok {
		u.locks[lock.local] = lock
		switch op {
		case "Lock", "RLock":
			mode := "w"
			if op == "RLock" {
				mode = "r"
			}
			if u.reporting {
				if modes := st.held[lock.local]; len(modes) > 0 {
					// Write acquisition over anything, or read over a held
					// write, self-deadlocks. Read-over-read is legal (shared)
					// and stays quiet.
					if mode == "w" || modes["w"] != 0 {
						u.reportOnce("dbl:"+lock.local+op+posKey(u.pass, call.Pos()), call.Pos(),
							"%s of %s while it may already be held (acquired at %s): a goroutine deadlocks re-acquiring its own lock",
							op, lock.display, u.pass.Fset.Position(firstPos(modes)))
					}
				}
				// Order edge: acquiring while holding other locks.
				u.recordDirectEdges(st, lock, call.Pos())
			}
			if st.held[lock.local] == nil {
				st.held[lock.local] = map[string]token.Pos{}
			}
			if _, dup := st.held[lock.local][mode]; !dup {
				st.held[lock.local][mode] = call.Pos()
			}
		case "Unlock", "RUnlock":
			mode := "w"
			if op == "RUnlock" {
				mode = "r"
			}
			if modes := st.held[lock.local]; modes != nil {
				delete(modes, mode)
				if len(modes) == 0 {
					delete(st.held, lock.local)
				}
			} else if u.reporting {
				u.reportOnce("unheld:"+lock.local+op+posKey(u.pass, call.Pos()), call.Pos(),
					"%s of %s which is not held on any path through this point", op, lock.display)
			}
		}
		return
	}
	if !u.reporting {
		return
	}
	// Calls made while holding locks feed the repo-wide order graph.
	if fn := staticCallee(u.pass, call); fn != nil {
		if sum := u.summaries[funcKey(fn)]; len(sum) > 0 {
			for localKey := range st.held {
				from := u.locks[localKey].global
				if from == "" {
					continue
				}
				for to := range sum {
					if to == from {
						continue
					}
					if _, ok := u.edges[lsEdge{from, to}]; !ok {
						u.edges[lsEdge{from, to}] = call.Pos()
					}
				}
			}
		}
		return
	}
	if sig := namedFuncSig(u.pass, call); sig != "" && len(st.held) > 0 {
		var helds []string
		for localKey := range st.held {
			if g := u.locks[localKey].global; g != "" {
				helds = append(helds, g)
			}
		}
		if len(helds) > 0 {
			sort.Strings(helds)
			*u.pending = append(*u.pending, lsPending{helds: helds, sig: sig, pos: call.Pos()})
		}
	}
}

func (u *lsUnit) recordDirectEdges(st *lsState, acquired lockObj, pos token.Pos) {
	if acquired.global == "" {
		return
	}
	for localKey := range st.held {
		from := u.locks[localKey].global
		if from == "" || from == acquired.global {
			continue
		}
		if _, ok := u.edges[lsEdge{from, acquired.global}]; !ok {
			u.edges[lsEdge{from, acquired.global}] = pos
		}
	}
}

func firstPos(modes map[string]token.Pos) token.Pos {
	best := token.NoPos
	for _, p := range modes {
		if best == token.NoPos || p < best {
			best = p
		}
	}
	return best
}

func posKey(pass *Pass, pos token.Pos) string {
	p := pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}

// ---- analyzer body ----

func runLocksafe(pass *Pass) error {
	summaries := lsSummaries(pass)
	collectLockSummaries(pass, summaries)
	collectAddrTaken(pass, lsAddrTaken(pass))

	edges := lsEdges(pass)
	pending := lsPendings(pass)
	for _, file := range pass.Files {
		for _, unit := range funcUnits(file) {
			u := &lsUnit{
				pass:      pass,
				locks:     map[string]lockObj{},
				reported:  map[string]bool{},
				summaries: summaries,
				edges:     edges,
				pending:   pending,
			}
			cfg := BuildCFG(unit.body, pass.Info)
			in := forwardFlow(cfg, newLsState(), flowFns[*lsState]{
				clone:    (*lsState).clone,
				joinInto: func(dst, src *lsState) bool { return dst.joinInto(src) },
				transfer: u.transfer,
			})
			// Reporting pass: re-walk each reachable block once with the
			// final entry states, then audit exits.
			u.reporting = true
			for _, b := range cfg.ReversePostorder() {
				st, ok := in[b]
				if !ok {
					continue
				}
				out := u.transfer(b, st.clone())
				if b.Return == nil && b.Panic == nil && len(b.Succs) > 0 {
					continue
				}
				for localKey, modes := range out.held {
					lock := u.locks[localKey]
					for mode, acq := range modes {
						if out.deferred[localKey][mode] {
							continue
						}
						verb := "Unlock"
						if mode == "r" {
							verb = "RUnlock"
						}
						exitKind := "return"
						if b.Panic != nil {
							exitKind = "panic"
						}
						u.reportOnce("leak:"+localKey+mode+posKey(pass, acq), acq,
							"%s acquired here may still be held at a %s: release it on every path (or defer %s.%s())",
							lock.display, exitKind, lock.display, verb)
					}
				}
			}
		}
	}
	return nil
}

// collectLockSummaries computes, for every function declared in this
// package, the set of type-level locks it may acquire — directly or
// through static calls (callee summaries of other packages are already
// in Shared because packages load in dependency order; same-package
// recursion iterates to fixpoint).
func collectLockSummaries(pass *Pass, summaries map[string]map[string]token.Pos) {
	type local struct {
		key     string
		direct  map[string]token.Pos
		callees map[string]bool
	}
	var locals []*local
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			l := &local{key: funcKey(obj), direct: map[string]token.Pos{}, callees: map[string]bool{}}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if op, lock, ok := mutexOp(pass, call); ok {
					if (op == "Lock" || op == "RLock") && lock.global != "" {
						if _, dup := l.direct[lock.global]; !dup {
							l.direct[lock.global] = call.Pos()
						}
					}
					return true
				}
				if callee := staticCallee(pass, call); callee != nil {
					l.callees[funcKey(callee)] = true
				}
				return true
			})
			locals = append(locals, l)
		}
	}
	for _, l := range locals {
		sum := map[string]token.Pos{}
		for tok, pos := range l.direct {
			sum[tok] = pos
		}
		summaries[l.key] = sum
	}
	for changed := true; changed; {
		changed = false
		for _, l := range locals {
			sum := summaries[l.key]
			for callee := range l.callees {
				for tok, pos := range summaries[callee] {
					if _, ok := sum[tok]; !ok {
						sum[tok] = pos
						changed = true
					}
				}
			}
		}
	}
}

// collectAddrTaken records every function whose value is taken (passed,
// stored, assigned — any use outside call position), keyed by its
// printed value signature. Indirect calls through named function types
// resolve against this set at Finish.
func collectAddrTaken(pass *Pass, addr map[string]map[string]bool) {
	inCallPos := map[ast.Expr]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				inCallPos[ast.Unparen(call.Fun)] = true
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			expr, ok := n.(ast.Expr)
			if !ok || inCallPos[expr] {
				return true
			}
			var fn *types.Func
			switch e := expr.(type) {
			case *ast.Ident:
				fn, _ = pass.Info.Uses[e].(*types.Func)
			case *ast.SelectorExpr:
				// Only the whole selector is a method value; its Sel is
				// matched here, the X side recurses on its own.
				fn, _ = pass.Info.Uses[e.Sel].(*types.Func)
				if inCallPos[expr] {
					fn = nil
				}
			default:
				return true
			}
			if fn == nil {
				return true
			}
			tv, ok := pass.Info.Types[expr]
			if !ok || tv.Type == nil {
				return true
			}
			sig, ok := types.Unalias(tv.Type).(*types.Signature)
			if !ok {
				return true
			}
			key := sigKey(sig)
			if addr[key] == nil {
				addr[key] = map[string]bool{}
			}
			addr[key][funcKey(fn)] = true
			return true
		})
	}
}

// finishLocksafe resolves indirect calls against the address-taken set,
// then reports every cycle in the accumulated lock-order graph.
func finishLocksafe(pass *Pass) error {
	summaries := lsSummaries(pass)
	edges := lsEdges(pass)
	addr := lsAddrTaken(pass)
	for _, p := range *lsPendings(pass) {
		for fk := range addr[p.sig] {
			for to := range summaries[fk] {
				for _, from := range p.helds {
					if from == to {
						continue
					}
					if _, ok := edges[lsEdge{from, to}]; !ok {
						edges[lsEdge{from, to}] = p.pos
					}
				}
			}
		}
	}

	// Cycle detection: DFS per node over the type-level graph, reporting
	// each cycle once (canonicalized by its sorted node set).
	graph := map[string][]string{}
	for e := range edges {
		graph[e.from] = append(graph[e.from], e.to)
	}
	for from := range graph {
		sort.Strings(graph[from])
	}
	nodes := make([]string, 0, len(graph))
	for n := range graph {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	seenCycles := map[string]bool{}
	for _, start := range nodes {
		path := []string{start}
		onPath := map[string]bool{start: true}
		var dfs func(cur string) bool
		dfs = func(cur string) bool {
			for _, next := range graph[cur] {
				if next == start {
					key := canonicalCycle(path)
					if !seenCycles[key] {
						seenCycles[key] = true
						reportCycle(pass, path, edges)
					}
					continue
				}
				if onPath[next] {
					continue
				}
				onPath[next] = true
				path = append(path, next)
				dfs(next)
				path = path[:len(path)-1]
				delete(onPath, next)
			}
			return false
		}
		dfs(start)
	}
	return nil
}

func canonicalCycle(path []string) string {
	s := append([]string(nil), path...)
	sort.Strings(s)
	return strings.Join(s, "→")
}

func reportCycle(pass *Pass, path []string, edges map[lsEdge]token.Pos) {
	// Report at the lexically-first edge of the cycle so the finding is
	// stable and clickable.
	pos := token.NoPos
	for i := range path {
		e := lsEdge{path[i], path[(i+1)%len(path)]}
		if p, ok := edges[e]; ok && (pos == token.NoPos || p < pos) {
			pos = p
		}
	}
	disp := make([]string, 0, len(path)+1)
	// Rotate so the cycle starts at its smallest token, for determinism.
	min := 0
	for i, t := range path {
		if t < path[min] {
			min = i
		}
	}
	for i := 0; i <= len(path); i++ {
		disp = append(disp, shortToken(path[(min+i)%len(path)]))
	}
	pass.Reportf(pos, "lock-order cycle: %s — concurrent paths acquiring these locks in different orders can deadlock",
		strings.Join(disp, " → "))
}
