package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"logicblox/internal/core"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(core.NewDatabase(), cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// do sends a JSON request and decodes the JSON response into out (when
// non-nil), returning the HTTP status.
func do(t *testing.T, ts *httptest.Server, method, path string, reqBody, out any) int {
	t.Helper()
	var body io.Reader
	if reqBody != nil {
		raw, err := json.Marshal(reqBody)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, ts.URL+path, body)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode response: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

func mustOK(t *testing.T, ts *httptest.Server, method, path string, reqBody, out any) {
	t.Helper()
	if status := do(t, ts, method, path, reqBody, out); status != http.StatusOK {
		t.Fatalf("%s %s: status %d", method, path, status)
	}
}

func TestServerExecQueryFlow(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	mustOK(t, ts, "POST", "/addblock", Request{Name: "schema", Src: `
		profit[sku] = z <- sellingPrice[sku] = x, buyingPrice[sku] = y, z = x - y.`}, nil)

	var exec ExecResponse
	mustOK(t, ts, "POST", "/exec", Request{Src: `
		+sellingPrice["a"] = 10.
		+buyingPrice["a"] = 6.`}, &exec)
	if !exec.OK || exec.Branch != "main" {
		t.Fatalf("exec response = %+v", exec)
	}
	if d := exec.Deltas["sellingPrice"]; d.Ins != 1 {
		t.Fatalf("deltas = %+v", exec.Deltas)
	}

	var q QueryResponse
	mustOK(t, ts, "POST", "/query", Request{Src: `_(sku, p) <- profit[sku] = p.`}, &q)
	if len(q.Rows) != 1 || q.Rows[0][0] != "a" || q.Rows[0][1] != float64(4) {
		t.Fatalf("query rows = %v", q.Rows)
	}

	var vs VersionsResponse
	mustOK(t, ts, "GET", "/versions", nil, &vs)
	if len(vs.Versions) != 3 { // initial empty + addblock + exec
		t.Fatalf("versions = %+v", vs.Versions)
	}
}

func TestServerErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mustOK(t, ts, "POST", "/addblock", Request{Name: "b", Src: `d(x) <- s(x).`}, nil)

	cases := []struct {
		name       string
		method     string
		path       string
		body       any
		wantStatus int
		wantCode   string
	}{
		{"no such branch", "POST", "/exec", Request{Branch: "nope", Src: `+p(1).`}, 404, "no_such_branch"},
		{"parse error", "POST", "/exec", Request{Src: `+p(1`}, 400, "parse"},
		{"typecheck error", "POST", "/exec", Request{Src: `+d(1).`}, 422, "typecheck"},
		{"query parse error", "POST", "/query", Request{Src: `_(`}, 400, "parse"},
		{"duplicate block", "POST", "/addblock", Request{Name: "b", Src: `e(x) <- s(x).`}, 409, "conflict"},
		{"branch exists", "POST", "/branches", BranchRequest{Op: "create", From: "main", To: "main"}, 409, "branch_exists"},
		{"unknown op", "POST", "/branches", BranchRequest{Op: "zap"}, 400, "bad_request"},
		{"bad json", "POST", "/exec", "not an object", 400, "bad_request"},
		{"method not allowed", "GET", "/exec", nil, 405, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var e ErrorResponse
			status := do(t, ts, tc.method, tc.path, tc.body, &e)
			if status != tc.wantStatus || e.Code != tc.wantCode {
				t.Fatalf("status=%d code=%q (err=%q), want %d %q",
					status, e.Code, e.Error, tc.wantStatus, tc.wantCode)
			}
		})
	}
}

// TestServerConcurrentWriters races N writers against one branch. Every
// transaction executes on a head snapshot and commits via CommitIf, so
// losers of the race re-execute; with retries to spare, all must land
// and no update may be lost.
func TestServerConcurrentWriters(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxRetries: 100})

	const writers = 8
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raw, _ := json.Marshal(Request{Src: fmt.Sprintf("+val(%d).", i)})
			resp, err := ts.Client().Post(ts.URL+"/exec", "application/json", bytes.NewReader(raw))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(resp.Body)
				errs <- fmt.Errorf("writer %d: status %d: %s", i, resp.StatusCode, b)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	var q QueryResponse
	mustOK(t, ts, "POST", "/query", Request{Src: `_(x) <- val(x).`}, &q)
	if len(q.Rows) != writers {
		t.Fatalf("lost updates: %d rows, want %d: %v", len(q.Rows), writers, q.Rows)
	}
	// The history must show one committed version per writer.
	if got, want := s.Database().Versions(), 1+writers; got != want {
		t.Fatalf("versions = %d, want %d", got, want)
	}
}

// TestServerDeadline504 checks a per-request deadline observably stops
// the engine's fixpoint: the rule below would derive 50M facts (minutes
// of work), but the 100ms budget must surface as a fast 504.
func TestServerDeadline504(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mustOK(t, ts, "POST", "/addblock", Request{Name: "rec", Src: `
		m(x) <- seed(x).
		m(y) <- m(x), x < 50000000, y = x + 1.`}, nil)

	t0 := time.Now()
	var e ErrorResponse
	status := do(t, ts, "POST", "/exec", Request{Src: `+seed(0).`, TimeoutMs: 100}, &e)
	elapsed := time.Since(t0)
	if status != http.StatusGatewayTimeout || e.Code != "timeout" {
		t.Fatalf("status=%d code=%q err=%q, want 504 timeout", status, e.Code, e.Error)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("fixpoint did not stop at the deadline: took %v", elapsed)
	}
	// The failed transaction must not have committed anything.
	var q QueryResponse
	mustOK(t, ts, "POST", "/query", Request{Src: `_(x) <- seed(x).`, TimeoutMs: 5000}, &q)
	if len(q.Rows) != 0 {
		t.Fatalf("aborted transaction leaked: %v", q.Rows)
	}
}

func TestServerBranchOps(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mustOK(t, ts, "POST", "/exec", Request{Src: `+inv("widget").`}, nil)

	var br BranchesResponse
	mustOK(t, ts, "POST", "/branches", BranchRequest{Op: "create", From: "main", To: "whatif"}, &br)
	if len(br.Branches) != 2 {
		t.Fatalf("branches = %v", br.Branches)
	}

	// Diverge the scenario branch, then diff it against main.
	mustOK(t, ts, "POST", "/exec", Request{Branch: "whatif", Src: `+inv("gadget"). +inv("gizmo").`}, nil)
	mustOK(t, ts, "POST", "/branches", BranchRequest{Op: "diff", From: "main", To: "whatif"}, &br)
	if d := br.Diff["inv"]; d.Ins != 2 || d.Del != 0 {
		t.Fatalf("diff = %+v", br.Diff)
	}

	// Accept the scenario: promote whatif's head onto main.
	mustOK(t, ts, "POST", "/branches", BranchRequest{Op: "commit", From: "whatif", To: "main"}, &br)
	var q QueryResponse
	mustOK(t, ts, "POST", "/query", Request{Src: `_(x) <- inv(x).`}, &q)
	if len(q.Rows) != 3 {
		t.Fatalf("main after promote = %v", q.Rows)
	}

	// Time travel: branch from version 1 (after the first exec).
	mustOK(t, ts, "POST", "/branches", BranchRequest{Op: "branchat", Version: 1, To: "past"}, &br)
	mustOK(t, ts, "POST", "/query", Request{Branch: "past", Src: `_(x) <- inv(x).`}, &q)
	if len(q.Rows) != 1 {
		t.Fatalf("past branch = %v", q.Rows)
	}

	mustOK(t, ts, "POST", "/branches", BranchRequest{Op: "delete", To: "past"}, &br)
	mustOK(t, ts, "GET", "/branches", nil, &br)
	if len(br.Branches) != 2 {
		t.Fatalf("branches after delete = %v", br.Branches)
	}
}

var promSample = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+="[^"]*"(,[a-zA-Z0-9_]+="[^"]*")*\})? (NaN|[-+]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)

func TestServerMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mustOK(t, ts, "POST", "/exec", Request{Src: `+p(1).`}, nil)
	mustOK(t, ts, "POST", "/query", Request{Src: `_(x) <- p(x).`}, nil)

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	out := string(raw)
	for _, want := range []string{
		"lb_http_exec_requests_total 1",
		"lb_http_exec_status_200_total 1",
		"# TYPE lb_http_exec_duration_seconds histogram",
		`lb_http_exec_duration_seconds_bucket{le="+Inf"} 1`,
		"# TYPE lb_http_query_duration_seconds histogram",
		"lb_server_commits_total 1",
		"lb_server_workers",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promSample.MatchString(line) {
			t.Errorf("line does not parse as a Prometheus sample: %q", line)
		}
	}

	// The same snapshot as expvar-style JSON.
	var vars map[string]any
	mustOK(t, ts, "GET", "/debug/vars", nil, &vars)
	counters, ok := vars["counters"].(map[string]any)
	if !ok || counters["http.exec.requests"] != float64(1) {
		t.Fatalf("/debug/vars counters = %v", vars["counters"])
	}
}

// TestServerSaveLoadRoundTrip snapshots a live server with POST /save
// and restores it into a second server with POST /load: branches,
// version history, logic and derived predicates must survive.
func TestServerSaveLoadRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	mustOK(t, ts, "POST", "/addblock", Request{Name: "tc", Src: `
		path(x, y) <- edge(x, y).
		path(x, z) <- path(x, y), edge(y, z).`}, nil)
	mustOK(t, ts, "POST", "/exec", Request{Src: `+edge(1, 2). +edge(2, 3).`}, nil)
	mustOK(t, ts, "POST", "/branches", BranchRequest{Op: "create", From: "main", To: "side"}, nil)

	resp, err := ts.Client().Post(ts.URL+"/save", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(snap) == 0 {
		t.Fatalf("/save: status %d, %d bytes", resp.StatusCode, len(snap))
	}

	_, ts2 := newTestServer(t, Config{})
	resp, err = ts2.Client().Post(ts2.URL+"/load", "application/octet-stream", bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	var br BranchesResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(br.Branches) != 2 {
		t.Fatalf("/load: status %d, branches %v", resp.StatusCode, br.Branches)
	}

	// Derived predicates re-materialize on restore.
	var q QueryResponse
	mustOK(t, ts2, "POST", "/query", Request{Src: `_(x, y) <- path(x, y).`}, &q)
	if len(q.Rows) != 3 {
		t.Fatalf("restored path = %v", q.Rows)
	}
	// And the restored database accepts new transactions.
	mustOK(t, ts2, "POST", "/exec", Request{Branch: "side", Src: `+edge(3, 4).`}, nil)
}

func TestServerDrainRejectsNewWork(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	mustOK(t, ts, "GET", "/healthz", nil, nil)

	s.BeginDrain()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("healthz while draining: status %d, Retry-After %q",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	var e ErrorResponse
	if status := do(t, ts, "POST", "/exec", Request{Src: `+p(1).`}, &e); status != 503 || e.Code != "unavailable" {
		t.Fatalf("exec while draining: status %d code %q", status, e.Code)
	}
	// Metrics stay readable during a drain so the shutdown is observable.
	if resp, err := ts.Client().Get(ts.URL + "/metrics"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics while draining: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}
}

// TestServerPanicRecovery drives a panicking handler through the
// middleware: the panic must become a 500 with code "internal", be
// counted, and not kill the server.
func TestServerPanicRecovery(t *testing.T) {
	s := New(core.NewDatabase(), Config{})
	h := s.endpoint("boom", http.MethodPost, false, func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d", rec.Code)
	}
	var e ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Code != "internal" {
		t.Fatalf("body = %s (%v)", rec.Body, err)
	}
	if got := s.reg.Snapshot().Counters["server.panics"]; got != 1 {
		t.Fatalf("server.panics = %d", got)
	}
}

// TestServerPoolRejection saturates the worker pool and its wait queue;
// the next request must be turned away with errBusy (503 busy) instead
// of queuing unboundedly.
func TestServerPoolRejection(t *testing.T) {
	s := New(core.NewDatabase(), Config{Workers: 1, Queue: 1})
	s.sem <- struct{}{} // occupy the only worker

	// Admission capacity is Workers+Queue waiters; fill it with two.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	waiting := make(chan error, 2)
	go func() { waiting <- s.acquire(ctx) }()
	go func() { waiting <- s.acquire(ctx) }()
	for s.queued.Load() < 2 {
		time.Sleep(time.Millisecond)
	}

	if err := s.acquire(context.Background()); err != errBusy {
		t.Fatalf("acquire over capacity = %v, want errBusy", err)
	}
	if got := s.reg.Snapshot().Counters["server.pool.rejected"]; got != 1 {
		t.Fatalf("server.pool.rejected = %d", got)
	}

	// The waiters themselves honor cancellation (the worker never frees).
	cancel()
	for i := 0; i < 2; i++ {
		if err := <-waiting; err != context.Canceled {
			t.Fatalf("queued acquire = %v, want context.Canceled", err)
		}
	}
	<-s.sem // restore the externally occupied worker slot
}

// TestServerVarsIncludesPlanDriftHistory: when the served database runs
// the adaptive optimizer, /debug/vars embeds the plan store's stats and
// per-plan snapshots, each carrying its observed-cost drift history.
func TestServerVarsIncludesPlanDriftHistory(t *testing.T) {
	db := core.NewDatabaseWith(core.NewWorkspace().WithAdaptiveOptimizer(true))
	s := New(db, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	mustOK(t, ts, "POST", "/addblock", Request{Name: "q",
		Src: `q(a, c) <- r(a, b), s(b, c).`}, nil)
	var facts strings.Builder
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&facts, "+r(%d, %d). +s(%d, %d).\n", i%40, i%60, i%60, i%80)
	}
	// Two execs: the first samples (miss), the second hits the cached
	// plan; both evaluations feed the drift history.
	mustOK(t, ts, "POST", "/exec", Request{Src: facts.String()}, nil)
	mustOK(t, ts, "POST", "/exec", Request{Src: "+r(999, 1)."}, nil)

	var vars struct {
		PlanStats *struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"plan_stats"`
		Plans []struct {
			Head        string  `json:"head"`
			BaselineOps int64   `json:"baseline_ops"`
			History     []int64 `json:"history"`
		} `json:"plans"`
	}
	mustOK(t, ts, "GET", "/debug/vars", nil, &vars)
	if vars.PlanStats == nil || vars.PlanStats.Misses == 0 {
		t.Fatalf("/debug/vars plan_stats = %+v, want sampled misses", vars.PlanStats)
	}
	var q *struct {
		Head        string  `json:"head"`
		BaselineOps int64   `json:"baseline_ops"`
		History     []int64 `json:"history"`
	}
	for i := range vars.Plans {
		if vars.Plans[i].Head == "q" {
			q = &vars.Plans[i]
		}
	}
	if q == nil {
		t.Fatalf("/debug/vars plans missing head q: %+v", vars.Plans)
	}
	if len(q.History) == 0 || q.BaselineOps == 0 {
		t.Fatalf("plan q has no drift history: %+v", q)
	}

	// A plain (non-adaptive) database must omit the plan section rather
	// than serve an empty one.
	_, plain := newTestServer(t, Config{})
	var raw map[string]any
	mustOK(t, plain, "GET", "/debug/vars", nil, &raw)
	if _, ok := raw["plan_stats"]; ok {
		t.Fatal("non-adaptive /debug/vars should omit plan_stats")
	}
	if _, ok := raw["plans"]; ok {
		t.Fatal("non-adaptive /debug/vars should omit plans")
	}
}
