package engine

import (
	"logicblox/internal/compiler"
	"logicblox/internal/obs"
)

// SetObserver points subsequent evaluations at reg (nil disables
// instrumentation). The incremental-maintenance and transaction layers
// use this to share one registry across many contexts.
func (c *Context) SetObserver(reg *obs.Registry) {
	c.mu.Lock()
	c.obs = reg
	c.ruleStats = map[int]*obs.RuleStats{}
	c.mu.Unlock()
}

// Observer returns the registry evaluations record into, or nil.
func (c *Context) Observer() *obs.Registry { return c.obs }

// SetSpan makes sp the parent of spans created by subsequent stratum and
// rule evaluations (nil detaches). Callers that drive strata directly
// (transactions, maintenance) use this to attach engine work to their own
// trace.
func (c *Context) SetSpan(sp *obs.Span) { c.span = sp }

// ruleStatsFor returns (caching) the registry's profile record for r, or
// nil when no observer is attached.
func (c *Context) ruleStatsFor(r *compiler.RulePlan) *obs.RuleStats {
	if c.obs == nil {
		return nil
	}
	c.mu.Lock()
	rs, ok := c.ruleStats[r.ID]
	if !ok {
		rs = c.obs.Rule(r.ID, r.HeadName, r.Source)
		c.ruleStats[r.ID] = rs
	}
	c.mu.Unlock()
	return rs
}
