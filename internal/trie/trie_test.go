package trie

import (
	"math/rand"
	"testing"

	"logicblox/internal/tuple"
)

func sorted(ts []tuple.Tuple) []tuple.Tuple {
	tuple.SortTuples(ts)
	return tuple.DedupSorted(ts)
}

func TestSliceIteratorWalkTernary(t *testing.T) {
	// The paper's Figure 4 predicate A(x,y,z).
	ts := sorted([]tuple.Tuple{
		tuple.Ints(1, 3, 4), tuple.Ints(1, 3, 5), tuple.Ints(1, 4, 6),
		tuple.Ints(1, 4, 8), tuple.Ints(1, 4, 9), tuple.Ints(1, 5, 2),
		tuple.Ints(3, 5, 2),
	})
	it := NewSliceIterator(ts, 3)
	got := Collect(it)
	if len(got) != len(ts) {
		t.Fatalf("Collect returned %d tuples, want %d", len(got), len(ts))
	}
	for i := range ts {
		if !got[i].Equal(ts[i]) {
			t.Fatalf("tuple %d: got %v want %v", i, got[i], ts[i])
		}
	}
}

func TestSliceIteratorTrieShape(t *testing.T) {
	ts := sorted([]tuple.Tuple{
		tuple.Ints(1, 3, 4), tuple.Ints(1, 3, 5), tuple.Ints(1, 4, 6),
		tuple.Ints(1, 4, 8), tuple.Ints(1, 4, 9), tuple.Ints(1, 5, 2),
		tuple.Ints(3, 5, 2),
	})
	it := NewSliceIterator(ts, 3)
	it.Open() // level x
	if it.Key().AsInt() != 1 {
		t.Fatalf("first x = %v", it.Key())
	}
	it.Open() // level y under x=1
	var ys []int64
	for !it.AtEnd() {
		ys = append(ys, it.Key().AsInt())
		it.Next()
	}
	want := []int64{3, 4, 5}
	if len(ys) != 3 || ys[0] != want[0] || ys[1] != want[1] || ys[2] != want[2] {
		t.Fatalf("ys under x=1: %v", ys)
	}
	it.Up() // back at x=1
	it.Next()
	if it.Key().AsInt() != 3 {
		t.Fatalf("second x = %v", it.Key())
	}
	it.Open()
	if it.Key().AsInt() != 5 {
		t.Fatalf("y under x=3 = %v", it.Key())
	}
	it.Open()
	if it.Key().AsInt() != 2 || it.Depth() != 2 {
		t.Fatalf("z under (3,5) = %v depth %d", it.Key(), it.Depth())
	}
}

func TestSliceIteratorSeek(t *testing.T) {
	ts := sorted([]tuple.Tuple{
		tuple.Ints(0), tuple.Ints(1), tuple.Ints(3), tuple.Ints(4), tuple.Ints(5),
		tuple.Ints(6), tuple.Ints(7), tuple.Ints(8), tuple.Ints(9), tuple.Ints(11),
	})
	it := NewSliceIterator(ts, 1)
	it.Open()
	it.Seek(tuple.Int(2))
	if it.Key().AsInt() != 3 {
		t.Fatalf("Seek(2) = %v, want 3", it.Key())
	}
	it.Seek(tuple.Int(3)) // seek to current is a no-op
	if it.Key().AsInt() != 3 {
		t.Fatalf("Seek(3) = %v", it.Key())
	}
	it.Seek(tuple.Int(10))
	if it.Key().AsInt() != 11 {
		t.Fatalf("Seek(10) = %v, want 11", it.Key())
	}
	it.Seek(tuple.Int(12))
	if !it.AtEnd() {
		t.Fatalf("Seek(12) should reach end")
	}
}

func TestSliceIteratorEmpty(t *testing.T) {
	it := NewSliceIterator(nil, 2)
	it.Open()
	if !it.AtEnd() {
		t.Fatalf("empty relation should open at end")
	}
	it.Up()
	if it.Depth() != -1 {
		t.Fatalf("depth after Up = %d", it.Depth())
	}
}

func TestConstIterator(t *testing.T) {
	c := NewConstIterator(tuple.Int(7))
	c.Open()
	if c.AtEnd() || c.Key().AsInt() != 7 {
		t.Fatalf("const iterator broken")
	}
	c.Seek(tuple.Int(5)) // below the value: stays
	if c.AtEnd() || c.Key().AsInt() != 7 {
		t.Fatalf("Seek below should stay")
	}
	c.Seek(tuple.Int(7)) // at the value: stays
	if c.AtEnd() {
		t.Fatalf("Seek at value should stay")
	}
	c.Seek(tuple.Int(8))
	if !c.AtEnd() {
		t.Fatalf("Seek past value should end")
	}
	c.Up()
	c.Open()
	c.Next()
	if !c.AtEnd() {
		t.Fatalf("Next should exhaust the singleton")
	}
}

// TestSliceIteratorRandomizedNavigation drives random trie navigation and
// checks every visited key against a naive model.
func TestSliceIteratorRandomizedNavigation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var ts []tuple.Tuple
	for i := 0; i < 400; i++ {
		ts = append(ts, tuple.Ints(rng.Int63n(8), rng.Int63n(8), rng.Int63n(8)))
	}
	ts = sorted(ts)
	it := NewSliceIterator(ts, 3)
	got := Collect(it)
	if len(got) != len(ts) {
		t.Fatalf("Collect size %d want %d", len(got), len(ts))
	}
	for i := range got {
		if !got[i].Equal(ts[i]) {
			t.Fatalf("mismatch at %d", i)
		}
	}
}
