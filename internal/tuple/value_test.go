package tuple

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null, KindNull},
		{Bool(true), KindBool},
		{Int(-7), KindInt},
		{Float(3.5), KindFloat},
		{String("abc"), KindString},
		{Entity(2, 9), KindEntity},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("kind of %v = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
	if Int(-7).AsInt() != -7 {
		t.Errorf("AsInt round trip failed")
	}
	if Float(3.5).AsFloat() != 3.5 {
		t.Errorf("AsFloat round trip failed")
	}
	if String("abc").AsString() != "abc" {
		t.Errorf("AsString round trip failed")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Errorf("AsBool round trip failed")
	}
	if Entity(2, 9).EntityType() != 2 || Entity(2, 9).EntityOrdinal() != 9 {
		t.Errorf("Entity round trip failed")
	}
}

func TestValueCompareWithinKind(t *testing.T) {
	if Compare(Int(1), Int(2)) >= 0 || Compare(Int(2), Int(1)) <= 0 || Compare(Int(3), Int(3)) != 0 {
		t.Errorf("int compare broken")
	}
	if Compare(String("a"), String("b")) >= 0 {
		t.Errorf("string compare broken")
	}
	if Compare(Float(1.5), Float(2.5)) >= 0 {
		t.Errorf("float compare broken")
	}
	if Compare(Bool(false), Bool(true)) >= 0 {
		t.Errorf("bool compare broken")
	}
}

func TestValueCompareAcrossKinds(t *testing.T) {
	// Cross-kind ordering follows Kind constants: null < bool < int < float < string < entity.
	ordered := []Value{Null, Bool(true), Int(5), Float(0.1), String(""), Entity(0, 0)}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			c := Compare(ordered[i], ordered[j])
			switch {
			case i < j && c >= 0:
				t.Errorf("expected %v < %v", ordered[i], ordered[j])
			case i > j && c <= 0:
				t.Errorf("expected %v > %v", ordered[i], ordered[j])
			case i == j && c != 0:
				t.Errorf("expected %v == %v", ordered[i], ordered[j])
			}
		}
	}
}

func TestMinMaxValueAreExtremes(t *testing.T) {
	vals := []Value{Bool(false), Int(-1 << 62), Int(1 << 62), Float(-1e300), String("zzz"), Entity(4e9, 4e9)}
	for _, v := range vals {
		if Compare(MinValue(), v) > 0 {
			t.Errorf("MinValue not <= %v", v)
		}
		if Compare(MaxValue(), v) < 0 {
			t.Errorf("MaxValue not >= %v", v)
		}
	}
}

func TestCompareIsTotalOrder(t *testing.T) {
	// Antisymmetry and transitivity on random values via sorting round trip.
	rng := rand.New(rand.NewSource(1))
	vals := make([]Value, 200)
	for i := range vals {
		switch rng.Intn(4) {
		case 0:
			vals[i] = Int(rng.Int63n(50) - 25)
		case 1:
			vals[i] = Float(float64(rng.Intn(10)) / 2)
		case 2:
			vals[i] = String(string(rune('a' + rng.Intn(5))))
		default:
			vals[i] = Bool(rng.Intn(2) == 0)
		}
	}
	sort.Slice(vals, func(i, j int) bool { return Less(vals[i], vals[j]) })
	for i := 1; i < len(vals); i++ {
		if Compare(vals[i-1], vals[i]) > 0 {
			t.Fatalf("sort produced out-of-order values at %d: %v > %v", i, vals[i-1], vals[i])
		}
	}
}

func TestHashEqualValuesEqualHashes(t *testing.T) {
	f := func(x int64) bool { return Int(x).Hash() == Int(x).Hash() }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(s string) bool { return String(s).Hash() == String(s).Hash() }
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestHashSpreadsSequentialInts(t *testing.T) {
	// The treap relies on hash-derived priorities being well mixed even for
	// dense integer keys; check no obvious collisions in a small window.
	seen := map[uint64]int64{}
	for i := int64(0); i < 100000; i++ {
		h := Int(i).Hash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("hash collision between %d and %d", prev, i)
		}
		seen[h] = i
	}
}

func TestNumeric(t *testing.T) {
	if f, ok := Int(3).Numeric(); !ok || f != 3 {
		t.Errorf("Int Numeric = %v,%v", f, ok)
	}
	if f, ok := Float(2.5).Numeric(); !ok || f != 2.5 {
		t.Errorf("Float Numeric = %v,%v", f, ok)
	}
	if _, ok := String("x").Numeric(); ok {
		t.Errorf("String should not be numeric")
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"null": Null,
		"true": Bool(true),
		"-12":  Int(-12),
		"2.5":  Float(2.5),
		`"hi"`: String("hi"),
		"@1:2": Entity(1, 2),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestAccessorPanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic calling AsInt on a string")
		}
	}()
	String("x").AsInt()
}
