// Package obsuser is an obssafe-analyzer fixture for the caller side:
// obs handles may be nil, so dereferencing one is flagged while calling
// its nil-safe methods is not.
package obsuser

import "logicblox/internal/analysis/testdata/src/obs"

type metrics struct {
	reqs *obs.Counter
}

func record(m *metrics) {
	m.reqs.Inc() // nil-safe method call: legal
}

func snapshotBad(m *metrics) obs.Counter {
	return *m.reqs // want: dereference
}

func okPointer(m *metrics) *obs.Counter {
	return m.reqs
}
