package core

import (
	"context"
	"fmt"

	"logicblox/internal/ast"
	"logicblox/internal/compiler"
	"logicblox/internal/engine"
	"logicblox/internal/lftj"
	"logicblox/internal/meta"
	"logicblox/internal/obs"
	"logicblox/internal/parser"
	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

// AddBlock installs a named block of logic (an addblock transaction,
// paper §2.2.2). The meta-engine determines which derived predicates the
// change dirties; only those are re-materialized (live programming,
// §3.3).
func (ws *Workspace) AddBlock(name, src string) (*Workspace, error) {
	return ws.AddBlockCtx(context.Background(), name, src)
}

// AddBlockCtx is AddBlock bounded by a context: cancellation or deadline
// expiry stops the re-materialization at the next rule or fixpoint-round
// boundary.
func (ws *Workspace) AddBlockCtx(rctx context.Context, name, src string) (*Workspace, error) {
	if ws.blocks.Contains(name) {
		return nil, fmt.Errorf("block %s already installed: %w", name, ErrConflict)
	}
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("block %s: %w: %w", name, ErrParse, err)
	}
	newParsed := ws.parsedBlocks()
	newParsed[name] = prog
	return ws.reinstall(rctx, name, src, prog, newParsed)
}

// RemoveBlock uninstalls a block, restoring the workspace logic to its
// state before the corresponding AddBlock.
func (ws *Workspace) RemoveBlock(name string) (*Workspace, error) {
	if !ws.blocks.Contains(name) {
		return nil, fmt.Errorf("block %s is not installed", name)
	}
	newParsed := ws.parsedBlocks()
	delete(newParsed, name)
	return ws.reinstall(context.Background(), name, "", nil, newParsed)
}

// reinstall recompiles the workspace logic after a block change and
// re-materializes exactly the dirty predicates.
func (ws *Workspace) reinstall(rctx context.Context, name, src string, parsed *ast.Program, newParsed map[string]*ast.Program) (*Workspace, error) {
	sp, done := ws.txSpan(rctx, "addblock")
	out, err := ws.reinstallTraced(rctx, name, src, parsed, newParsed, sp)
	done(err)
	return out, err
}

func (ws *Workspace) reinstallTraced(rctx context.Context, name, src string, parsed *ast.Program, newParsed map[string]*ast.Program, sp *obs.Span) (*Workspace, error) {
	csp := sp.Child("compile")
	compiled, err := compileBlocks(newParsed)
	csp.End()
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrTypecheck, err)
	}
	asp := sp.Child("analyze")
	analysis, err := meta.Analyze(ws.parsedBlocks(), newParsed)
	asp.End()
	if err != nil {
		return nil, err
	}

	out := ws.clone()
	if parsed == nil {
		out.blocks = out.blocks.Delete(name)
		out.parsed = out.parsed.Delete(name)
	} else {
		out.blocks = out.blocks.Set(name, src)
		out.parsed = out.parsed.Set(name, parsed)
	}
	out.prog = compiled

	// Drop predicates that lost all their rules, and prune stored results
	// of removed rules.
	valid := map[string]bool{}
	for _, r := range compiled.Rules {
		valid[ruleKey(r)] = true
	}
	for _, stratum := range compiled.Strata {
		for _, r := range stratum {
			valid[stratumKey(r.HeadName)] = true
		}
	}
	for _, key := range out.ruleRes.Keys() {
		if !valid[key] {
			out.ruleRes = out.ruleRes.Delete(key)
		}
	}
	for _, p := range analysis.DropPreds {
		out.derived = out.derived.Delete(p)
	}

	dirty := map[string]bool{}
	for _, p := range analysis.DirtyPreds {
		dirty[p] = true
	}
	for _, p := range analysis.DropPreds {
		dirty[p] = true // downstream readers of a dropped view must see it empty
	}
	// A schema change invalidates every cached plan that reads or derives
	// an affected predicate, so the adaptive optimizer re-samples against
	// the new logic instead of trusting stale orders.
	out.plans.InvalidatePreds(dirty)
	out, err = out.rederive(rctx, dirty, sp)
	if err != nil {
		return nil, err
	}
	ksp := sp.Child("constraints")
	err = out.checkConstraints()
	ksp.End()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ExecResult reports what an exec transaction changed.
type ExecResult struct {
	Workspace *Workspace
	// BaseDeltas lists insertions and deletions per base predicate.
	BaseDeltas map[string]ExecDelta
}

// ExecDelta is the per-predicate effect of an exec transaction.
type ExecDelta struct {
	Ins, Del []tuple.Tuple
}

// Exec runs an exec transaction (paper §2.2.2): src contains reactive
// logic — delta facts and reactive rules over +R, -R, ^R and R@start.
// The pipeline is:
//
//  1. seed R@start with the current contents of every predicate;
//  2. evaluate the reactive rules (stratified over decorated names);
//  3. expand ^R upserts into +R / -R pairs;
//  4. apply the system frame rules R := (R@start − (-R)) ∪ (+R);
//  5. re-derive affected views and check integrity constraints.
//
// On constraint violation the transaction aborts: the receiver workspace
// is untouched (it is just a value) and an error is returned.
func (ws *Workspace) Exec(src string) (*ExecResult, error) {
	return ws.ExecCtx(context.Background(), src)
}

// ExecCtx is Exec bounded by a context: cancellation or deadline expiry
// stops the reactive evaluation and view re-derivation at the next rule
// or fixpoint-round boundary, and the transaction aborts with ctx.Err()
// wrapped (the receiver workspace is untouched, as for any abort).
func (ws *Workspace) ExecCtx(rctx context.Context, src string) (*ExecResult, error) {
	sp, done := ws.txSpan(rctx, "exec")
	res, err := ws.exec(rctx, src, sp)
	done(err)
	return res, err
}

func (ws *Workspace) exec(rctx context.Context, src string, sp *obs.Span) (*ExecResult, error) {
	run, err := ws.execReactive(rctx, src, sp, nil)
	if err != nil {
		return nil, err
	}
	return ws.applyReactive(rctx, run, sp)
}

// reactiveRun is the outcome of an exec transaction's reactive phase
// against one workspace snapshot: the combined program, the evaluation
// context holding the post-reactive delta relations, and the pure
// derivations per head predicate (the union of every rule-evaluation
// output, independent of what the heads were seeded with).
type reactiveRun struct {
	combined *compiler.Program
	ctx      *engine.Context
	derived  map[string]relation.Relation
}

// seedExecCtx builds the engine context for an exec transaction's
// reactive phase over ws: current contents plus @start versions.
func (ws *Workspace) seedExecCtx(rctx context.Context, combined *compiler.Program) *engine.Context {
	ctx := engine.NewContext(combined, ws.relations(), engine.Options{Models: ws.models, Optimize: ws.optimize, Plans: ws.plans, Obs: ws.Observer(), Ctx: rctx})
	for p, info := range combined.Preds {
		// relationOr, not Relation: a predicate first introduced by this
		// transaction is unknown to ws.prog, and defaulting its @start
		// arity would corrupt the delta application below.
		ctx.Set(p+compiler.DecorAtStart, ws.relationOr(p, info.Arity))
	}
	return ctx
}

// execReactive parses, compiles and evaluates the reactive strata of an
// exec transaction against ws. When rec is non-nil it additionally
// records, per reactive stratum, the sensitivity intervals of every read
// and the pure derivations of every rule — the read/derivation record
// that ExecRecord.Repair replays against a different head on commit
// conflict (paper §3.4).
func (ws *Workspace) execReactive(rctx context.Context, src string, sp *obs.Span, rec *ExecRecord) (*reactiveRun, error) {
	psp := sp.Child("parse")
	eprog, err := parser.Parse(src)
	psp.End()
	if err != nil {
		return nil, fmt.Errorf("exec %w: %w", ErrParse, err)
	}
	csp := sp.Child("compile")
	combined, err := compileBlocks(ws.parsedBlocks(), eprog)
	csp.End()
	if err != nil {
		return nil, fmt.Errorf("exec %w: %w", ErrTypecheck, err)
	}
	ctx := ws.seedExecCtx(rctx, combined)
	run := &reactiveRun{combined: combined, ctx: ctx, derived: map[string]relation.Relation{}}

	// Evaluate reactive strata.
	esp := sp.Child("eval.reactive")
	ctx.SetSpan(esp)
	for _, stratum := range combined.ReactiveStrata {
		var idx *lftj.SensitivityIndex
		if rec != nil {
			idx = lftj.NewSensitivityIndex()
			ctx.SetSensitivityIndex(idx)
		}
		ctx.StartDerivedCapture()
		err := ctx.EvalStratum(stratum)
		capt := ctx.TakeDerivedCapture()
		if rec != nil {
			ctx.SetSensitivityIndex(nil)
		}
		if err != nil {
			esp.End()
			return nil, fmt.Errorf("exec: %w", err)
		}
		if rec != nil {
			rec.strata = append(rec.strata, recordedStratum{sens: idx, derived: capt})
		}
		mergeDerived(run.derived, capt)
	}
	ctx.SetSpan(nil)
	esp.End()
	if rec != nil {
		rec.combined = combined
	}
	return run, nil
}

// mergeDerived unions src's per-head derivations into dst.
func mergeDerived(dst, src map[string]relation.Relation) {
	for h, r := range src {
		if cur, ok := dst[h]; ok {
			dst[h] = cur.Union(r)
		} else {
			dst[h] = r
		}
	}
}

// applyReactive finishes an exec transaction against the receiver: it
// expands ^R upserts, applies the frame rules R := (R@start − (-R)) ∪ (+R),
// merges plain-headed reactive derivations into their head predicates,
// re-derives affected views and checks integrity constraints. run's
// context must have been seeded from the receiver (its @start relations
// are the receiver's contents) — either by execReactive on this
// workspace, or by ExecRecord replay onto a new head.
func (ws *Workspace) applyReactive(rctx context.Context, run *reactiveRun, sp *obs.Span) (*ExecResult, error) {
	combined, ctx := run.combined, run.ctx
	fsp := sp.Child("frame")
	// Expand ^R upserts: replace the functional value for the key, i.e.
	// delete the old binding (if different) and insert the new one.
	for p, info := range combined.Preds {
		hat := ctx.Relation(compiler.DecorHat + p)
		if hat.IsEmpty() {
			continue
		}
		plus := ctx.Relation(compiler.DecorPlus + p)
		minus := ctx.Relation(compiler.DecorMinus + p)
		start := ctx.Relation(p + compiler.DecorAtStart)
		hat.ForEach(func(t tuple.Tuple) bool {
			if info.Functional && info.Arity >= 2 {
				if old, ok := start.FuncGet(t[:info.Arity-1]); ok && !tuple.Equal(old, t[info.Arity-1]) {
					minus = minus.Insert(append(t[:info.Arity-1].Clone(), old))
				}
			}
			plus = plus.Insert(t)
			return true
		})
		ctx.Set(compiler.DecorPlus+p, plus)
		ctx.Set(compiler.DecorMinus+p, minus)
	}

	// Apply frame rules to every predicate with a non-empty delta.
	out := ws.clone()
	deltas := map[string]ExecDelta{}
	dirty := map[string]bool{}
	for p, info := range combined.Preds {
		plus := ctx.Relation(compiler.DecorPlus + p)
		minus := ctx.Relation(compiler.DecorMinus + p)
		if plus.IsEmpty() && minus.IsEmpty() {
			continue
		}
		if !info.EDB {
			return nil, fmt.Errorf("exec: %w: cannot modify derived predicate %s", ErrTypecheck, p)
		}
		start := ctx.Relation(p + compiler.DecorAtStart)
		next := start.Difference(minus).Union(plus)
		if next.Equal(start) {
			continue
		}
		var d ExecDelta
		start.Diff(next,
			func(t tuple.Tuple) { d.Del = append(d.Del, t) },
			func(t tuple.Tuple) { d.Ins = append(d.Ins, t) })
		deltas[p] = d
		out.base = out.base.Set(p, next)
		dirty[p] = true
	}

	// Plain-headed reactive rules (e.g. audit logs fed by +R) insert their
	// pure derivations into their extensional head predicates. Using the
	// captured derivations (rather than the context's head content, which
	// also holds the head's seed) keeps the merge independent of what the
	// receiver already stored — a frame deletion of a head tuple survives
	// unless the transaction actually re-derived it.
	seen := map[string]bool{}
	for _, stratum := range combined.ReactiveStrata {
		for _, r := range stratum {
			head := r.HeadName
			if compiler.BaseName(head) != head || seen[head] {
				continue
			}
			seen[head] = true
			derivedRel, ok := run.derived[head]
			if !ok || derivedRel.IsEmpty() {
				continue
			}
			cur := out.relationOr(head, derivedRel.Arity())
			merged := cur.Union(derivedRel)
			if !merged.Equal(cur) {
				var d ExecDelta
				cur.Diff(merged, func(tuple.Tuple) {}, func(t tuple.Tuple) { d.Ins = append(d.Ins, t) })
				prev := deltas[head]
				prev.Ins = append(prev.Ins, d.Ins...)
				deltas[head] = prev
				out.base = out.base.Set(head, merged)
				dirty[head] = true
			}
		}
	}

	fsp.End()
	var ins, del int64
	for _, d := range deltas {
		ins += int64(len(d.Ins))
		del += int64(len(d.Del))
	}
	sp.SetAttr("base_ins", ins)
	sp.SetAttr("base_del", del)

	if len(dirty) == 0 {
		return &ExecResult{Workspace: ws, BaseDeltas: deltas}, nil
	}
	res, err := out.rederive(rctx, dirty, sp)
	if err != nil {
		return nil, err
	}
	ksp := sp.Child("constraints")
	err = res.checkConstraints()
	ksp.End()
	if err != nil {
		return nil, err
	}
	return &ExecResult{Workspace: res, BaseDeltas: deltas}, nil
}

// Insert is a convenience exec: it inserts tuples into a base predicate
// directly, bypassing parsing (heavy transactional workloads use this
// path; it is equivalent to an exec of +pred facts).
func (ws *Workspace) Insert(pred string, tuples ...tuple.Tuple) (*Workspace, error) {
	return ws.applyDirect(pred, tuples, nil)
}

// Delete is the deletion counterpart of Insert.
func (ws *Workspace) Delete(pred string, tuples ...tuple.Tuple) (*Workspace, error) {
	return ws.applyDirect(pred, nil, tuples)
}

func (ws *Workspace) applyDirect(pred string, ins, del []tuple.Tuple) (*Workspace, error) {
	sp, done := ws.txSpan(context.Background(), "exec")
	sp.SetAttr("base_ins", int64(len(ins)))
	sp.SetAttr("base_del", int64(len(del)))
	out, err := ws.applyDirectTraced(pred, ins, del, sp)
	done(err)
	return out, err
}

func (ws *Workspace) applyDirectTraced(pred string, ins, del []tuple.Tuple, sp *obs.Span) (*Workspace, error) {
	info, ok := ws.prog.Preds[pred]
	if ok && !info.EDB {
		return nil, fmt.Errorf("cannot modify derived predicate %s", pred)
	}
	cur := ws.Relation(pred)
	if !ok && len(ins) > 0 {
		cur = relation.New(len(ins[0]))
	}
	next := cur
	for _, t := range del {
		next = next.Delete(t)
	}
	for _, t := range ins {
		next = next.Insert(t)
	}
	if next.Equal(cur) {
		return ws, nil
	}
	out := ws.clone()
	out.base = out.base.Set(pred, next)
	res, err := out.rederive(context.Background(), map[string]bool{pred: true}, sp)
	if err != nil {
		return nil, err
	}
	ksp := sp.Child("constraints")
	err = res.checkConstraints()
	ksp.End()
	if err != nil {
		return nil, err
	}
	return res, nil
}
