// The cliques example runs the paper's Figure 5 query — all 3-cliques of
// a social graph — through the LogiQL surface, and then compares the
// engine's leapfrog triejoin against a traditional binary hash-join plan
// on the same data, reproducing the figure's shape at laptop scale.
//
// Run with: go run ./examples/cliques
package main

import (
	"fmt"
	"log"
	"time"

	"logicblox"
	"logicblox/internal/graphgen"
	"logicblox/internal/joins"
)

func main() {
	// A power-law graph standing in for LiveJournal (see DESIGN.md).
	edges := graphgen.Canonical(graphgen.PreferentialAttachment(4000, 3, 99))
	fmt.Printf("graph: %d canonical edges", len(edges))
	maxDeg, top1 := graphgen.DegreeStats(edges)
	fmt.Printf(" (max degree %d, top-1%% endpoint share %.0f%%)\n", maxDeg, top1*100)

	// The 3-clique query in LogiQL, over canonical (x<y) edges so each
	// triangle appears exactly once.
	ws := logicblox.NewWorkspace()
	ws, err := ws.AddBlock("graph", `
		edge(x, y) -> int(x), int(y).
		clique(x, y, z) <- edge(x, y), edge(y, z), edge(x, z).`)
	if err != nil {
		log.Fatal(err)
	}
	var tuples []logicblox.Tuple
	for _, e := range edges {
		tuples = append(tuples, logicblox.Ints(e.U, e.V))
	}
	t0 := time.Now()
	ws, err = ws.Load("edge", tuples)
	if err != nil {
		log.Fatal(err)
	}
	dEngine := time.Since(t0)
	cliques := ws.Relation("clique")
	fmt.Printf("LogiQL clique view: %d triangles materialized in %v (load + LFTJ derivation)\n",
		cliques.Len(), dEngine.Round(time.Millisecond))

	// Query through the language: triangles involving the highest-degree
	// hub (vertex ids are ordered by age in preferential attachment, so
	// the earliest vertices are the hubs).
	rows, err := ws.Query(`_(y, z) <- clique(0, y, z).`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles through hub vertex 0: %d\n", len(rows))

	// The Figure 5 comparison on the raw relations: worst-case-optimal
	// LFTJ vs the (E ⋈ E) ⋉ E binary plan of a conventional engine.
	e := graphgen.ToRelation(edges)
	t0 = time.Now()
	hashCount := joins.TriangleCountHash(e)
	dHash := time.Since(t0)
	t0 = time.Now()
	mergeCount := joins.TriangleCountMerge(e)
	dMerge := time.Since(t0)
	if hashCount != cliques.Len() || mergeCount != cliques.Len() {
		log.Fatalf("count mismatch: lftj=%d hash=%d merge=%d", cliques.Len(), hashCount, mergeCount)
	}
	fmt.Printf("binary hash-join plan:  %v\n", dHash.Round(time.Millisecond))
	fmt.Printf("binary merge-join plan: %v\n", dMerge.Round(time.Millisecond))
	fmt.Println("(the gap grows with graph size — run cmd/lb-experiments -exp fig5 for the sweep)")

	// Incremental maintenance: adding one edge updates the clique view
	// without recomputation (T3).
	res, err := ws.Exec(`+edge(100000, 100001). +edge(100001, 100002). +edge(100000, 100002).`)
	if err != nil {
		log.Fatal(err)
	}
	after := res.Workspace.Relation("clique").Len()
	fmt.Printf("after inserting a closing triangle: %d triangles (%+d)\n",
		after, after-cliques.Len())
}
