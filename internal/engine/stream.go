package engine

import (
	"fmt"
	"time"

	"logicblox/internal/compiler"
	"logicblox/internal/lftj"
	"logicblox/internal/obs"
	"logicblox/internal/tuple"
)

// RuleCursor is a pull cursor over one rule's derived head tuples: the
// streaming counterpart of evalRule for plain-projection rules. Each
// Next pipelines one binding out of the LFTJ join iterator, completes it
// (assignments, filters, negation), and projects the head — nothing is
// materialized. Tuples come out in lexicographic order of the rule's
// join-variable order; duplicates from distinct bindings are NOT removed
// (the consumer dedups, cheaply when head projection preserves order).
type RuleCursor struct {
	c      *Context
	r      *compiler.RulePlan
	binder *ruleBinder
	it     *lftj.Iter
	fact   bool // no atoms/consts: a single empty binding
	done   bool
	closed bool
	err    error
	rows   int64
	rs     *obs.RuleStats
	m      *lftj.Metrics
	t0     time.Time
}

// StreamRule opens a pull cursor over r's derivations. The rule must be a
// plain head projection (no aggregation or predict accumulator — those
// need the full result before producing any row). The plan is evaluated
// exactly as given: no optimizer reordering, so the caller controls the
// enumeration order. The cursor must be Closed (idempotent); it holds the
// join's trie iterators open between Next calls.
func (c *Context) StreamRule(r *compiler.RulePlan) (*RuleCursor, error) {
	if r.Agg != nil || r.Predict != nil {
		return nil, fmt.Errorf("engine: rule %q aggregates; cannot stream", r.Source)
	}
	cur := &RuleCursor{c: c, r: r, binder: newRuleBinder(c, r), t0: time.Now()}
	if len(r.Atoms) == 0 && len(r.Consts) == 0 {
		cur.fact = true
		return cur, nil
	}
	j, err := c.buildJoin(r, nil)
	if err != nil {
		return nil, err
	}
	if rs := c.ruleStatsFor(r); rs != nil {
		cur.rs = rs
		cur.m = &lftj.Metrics{}
		j.SetMetrics(cur.m)
	}
	cur.it = j.Iter()
	return cur, nil
}

// Next returns the next head tuple. ok=false means exhaustion OR error —
// check Err after the loop. The returned tuple is freshly allocated and
// owned by the caller. Cancellation of the context the evaluation was
// built with surfaces as Err() after at most one binding.
func (cur *RuleCursor) Next() (tuple.Tuple, bool) {
	if cur.done {
		return nil, false
	}
	if cur.fact {
		cur.done = true
		return cur.project(nil)
	}
	for {
		if err := cur.c.ctxErr(); err != nil {
			cur.err = err
			cur.done = true
			return nil, false
		}
		b, ok := cur.it.Next()
		if !ok {
			cur.done = true
			return nil, false
		}
		head, ok := cur.project(b)
		if cur.done {
			return head, ok
		}
		if ok {
			return head, true
		}
		// Filtered out: keep pulling.
	}
}

// project completes one join binding and evaluates the head expressions.
// On filter-out it returns (nil, false) with the cursor still live; on
// error it records it and marks the cursor done.
func (cur *RuleCursor) project(b tuple.Tuple) (tuple.Tuple, bool) {
	full, pass, err := cur.binder.complete(b)
	if err != nil {
		cur.fail(err)
		return nil, false
	}
	if !pass {
		return nil, false
	}
	head, err := evalExprs(cur.r.HeadExprs, full, cur.binder.resolver)
	if err != nil {
		cur.fail(err)
		return nil, false
	}
	cur.rows++
	return head, true
}

func (cur *RuleCursor) fail(err error) {
	cur.err = fmt.Errorf("in rule %q: %w", cur.r.Source, err)
	cur.done = true
}

// Err returns the first error the cursor hit, if any (nil after a clean
// exhaustion).
func (cur *RuleCursor) Err() error { return cur.err }

// Rows returns the number of head tuples produced so far.
func (cur *RuleCursor) Rows() int64 { return cur.rows }

// Close releases the join's trie iterators and flushes the rule's
// evaluation profile (duration, rows, seek/next counts). Idempotent.
func (cur *RuleCursor) Close() {
	if cur.closed {
		return
	}
	cur.closed = true
	cur.done = true
	if cur.it != nil {
		cur.it.Close()
	}
	if cur.rs != nil {
		cur.rs.AddEval(time.Since(cur.t0), cur.rows)
		if cur.m != nil {
			cur.rs.AddJoin(cur.m.Seeks, cur.m.Nexts, cur.m.SensRecords)
		}
	}
}
