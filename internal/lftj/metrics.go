package lftj

// Metrics counts the primitive work of leapfrog triejoin runs: iterator
// seeks, iterator nexts, and sensitivity-interval recordings. These are
// the quantities the worst-case-optimality argument (Veldhuizen, ICDT
// 2014) bounds, so they are what a profile of a slow join should show.
//
// A Metrics value uses plain (non-atomic) counters and must be owned by a
// single join run at a time; concurrent runs each use their own Metrics
// and fold them together with Merge. Attach with Join.SetMetrics. A nil
// *Metrics disables counting at the cost of one pointer test per
// operation.
type Metrics struct {
	Seeks       int64 // Seek calls issued to trie iterators
	Nexts       int64 // Next calls issued to trie iterators
	SensRecords int64 // sensitivity intervals recorded
}

// Merge folds o into m.
func (m *Metrics) Merge(o Metrics) {
	m.Seeks += o.Seeks
	m.Nexts += o.Nexts
	m.SensRecords += o.SensRecords
}

// SetMetrics attaches a work counter to subsequent runs of the join (nil
// detaches). The Metrics must not be shared with a concurrently running
// join.
func (j *Join) SetMetrics(m *Metrics) { j.m = m }

// Metrics returns the attached work counter, or nil.
func (j *Join) Metrics() *Metrics { return j.m }
