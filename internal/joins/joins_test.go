package joins

import (
	"math/rand"
	"testing"

	"logicblox/internal/graphgen"
	"logicblox/internal/lftj"
	"logicblox/internal/relation"
	"logicblox/internal/tuple"
)

func rel2(pairs ...[2]int64) relation.Relation {
	r := relation.New(2)
	for _, p := range pairs {
		r = r.Insert(tuple.Ints(p[0], p[1]))
	}
	return r
}

func TestHashJoinBasic(t *testing.T) {
	l := rel2([2]int64{1, 10}, [2]int64{2, 20})
	r := rel2([2]int64{10, 100}, [2]int64{10, 101}, [2]int64{30, 300})
	out := HashJoin(l, r, []int{1}, []int{0})
	if len(out) != 2 {
		t.Fatalf("hash join size = %d: %v", len(out), out)
	}
	for _, o := range out {
		if o[0].AsInt() != 1 || o[1].AsInt() != 10 || o[2].AsInt() != 10 {
			t.Fatalf("bad joined tuple %v", o)
		}
	}
}

func TestMergeJoinMatchesHashJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		mk := func() relation.Relation {
			r := relation.New(2)
			for i := 0; i < rng.Intn(50); i++ {
				r = r.Insert(tuple.Ints(rng.Int63n(8), rng.Int63n(8)))
			}
			return r
		}
		l, r := mk(), mk()
		h := HashJoin(l, r, []int{0}, []int{0})
		m := MergeJoin(l, r)
		if len(h) != len(m) {
			t.Fatalf("trial %d: hash %d vs merge %d results", trial, len(h), len(m))
		}
	}
}

func TestSemiJoin(t *testing.T) {
	interm := []tuple.Tuple{tuple.Ints(1, 2, 9), tuple.Ints(3, 4, 9)}
	r := rel2([2]int64{1, 2})
	out := SemiJoin(interm, r, []int{0, 1})
	if len(out) != 1 || out[0][0].AsInt() != 1 {
		t.Fatalf("semi join = %v", out)
	}
}

// lftjTriangleCount counts triangles over canonical edges with LFTJ.
func lftjTriangleCount(e relation.Relation) int {
	j, err := lftj.NewJoin(3, []lftj.Atom{
		{Pred: "E1", Iter: e.Iterator(), Vars: []int{0, 1}},
		{Pred: "E2", Iter: e.Iterator(), Vars: []int{1, 2}},
		{Pred: "E3", Iter: e.Iterator(), Vars: []int{0, 2}},
	}, nil)
	if err != nil {
		panic(err)
	}
	return j.Count()
}

func TestTriangleCountsAgreeAcrossAlgorithms(t *testing.T) {
	// Known instance: the 4-clique {0,1,2,3} has C(4,3)=4 triangles.
	var edges []graphgen.Edge
	for u := int64(0); u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			edges = append(edges, graphgen.Edge{U: u, V: v})
		}
	}
	e := graphgen.ToRelation(edges)
	if got := TriangleCountHash(e); got != 4 {
		t.Fatalf("hash count = %d, want 4", got)
	}
	if got := TriangleCountMerge(e); got != 4 {
		t.Fatalf("merge count = %d, want 4", got)
	}
	if got := lftjTriangleCount(e); got != 4 {
		t.Fatalf("lftj count = %d, want 4", got)
	}
	if got := TriangleListHash(e); len(got) != 4 {
		t.Fatalf("triangle list = %v", got)
	}
}

func TestTriangleCountsAgreeOnRandomGraphs(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		edges := graphgen.Canonical(graphgen.PreferentialAttachment(200, 3, seed))
		e := graphgen.ToRelation(edges)
		h := TriangleCountHash(e)
		m := TriangleCountMerge(e)
		l := lftjTriangleCount(e)
		if h != m || h != l {
			t.Fatalf("seed %d: hash=%d merge=%d lftj=%d", seed, h, m, l)
		}
		if h == 0 {
			t.Fatalf("seed %d: degenerate graph with no triangles", seed)
		}
	}
}
